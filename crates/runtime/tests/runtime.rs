//! End-to-end tests of the real-threads PPC runtime: every §4 feature of
//! the paper exercised against real threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ppc_rt::{EntryOptions, ProgramId, RtError, Runtime};

fn echo_rt(n: usize) -> (Arc<Runtime>, usize) {
    let rt = Runtime::new(n);
    let ep = rt.bind("echo", EntryOptions::default(), Arc::new(|ctx| ctx.args)).unwrap();
    (rt, ep)
}

#[test]
fn sync_roundtrip_returns_all_eight_words() {
    let (rt, ep) = echo_rt(1);
    let c = rt.client(0, 1);
    let args = [11, 22, 33, 44, 55, 66, 77, 88];
    assert_eq!(c.call(ep, args).unwrap(), args);
}

#[test]
fn many_sequential_calls_reuse_one_worker() {
    let (rt, ep) = echo_rt(1);
    let c = rt.client(0, 1);
    for i in 0..200u64 {
        assert_eq!(c.call(ep, [i; 8]).unwrap(), [i; 8]);
    }
    // One pre-spawned worker handles everything: no Frank growth.
    assert_eq!(rt.stats.workers_created(), 0);
    assert_eq!(rt.stats.calls(), 200);
}

#[test]
fn caller_program_reaches_handler() {
    let rt = Runtime::new(1);
    let seen = Arc::new(AtomicU64::new(0));
    let seen2 = Arc::clone(&seen);
    let ep = rt
        .bind(
            "whoami",
            EntryOptions::default(),
            Arc::new(move |ctx| {
                seen2.store(ctx.caller_program as u64, Ordering::SeqCst);
                [ctx.caller_program as u64; 8]
            }),
        )
        .unwrap();
    let c = rt.client(0, 4242);
    assert_eq!(c.call(ep, [0; 8]).unwrap()[0], 4242);
    assert_eq!(seen.load(Ordering::SeqCst), 4242);
}

#[test]
fn scratch_page_is_usable_and_recycled() {
    let rt = Runtime::new(1);
    let ep = rt
        .bind(
            "scratch",
            EntryOptions::default(),
            Arc::new(|ctx| {
                let args = ctx.args;
                let s = ctx.scratch();
                // Leave a marker; read back whatever a previous call left.
                let prev = u64::from_le_bytes(s[..8].try_into().unwrap());
                s[..8].copy_from_slice(&args[0].to_le_bytes());
                [prev, args[0], 0, 0, 0, 0, 0, 0]
            }),
        )
        .unwrap();
    let c = rt.client(0, 1);
    assert_eq!(c.call(ep, [7; 8]).unwrap()[0], 0, "fresh scratch is zeroed");
    // The slot (and its scratch) is recycled from the per-vCPU pool.
    assert_eq!(c.call(ep, [9; 8]).unwrap()[0], 7, "serially shared stack");
}

#[test]
fn hold_cd_pins_scratch_to_worker() {
    let rt = Runtime::new(1);
    let opts = EntryOptions { hold_cd: true, ..Default::default() };
    let ep = rt
        .bind(
            "held",
            opts,
            Arc::new(|ctx| {
                let args = ctx.args;
                let s = ctx.scratch();
                let prev = u64::from_le_bytes(s[..8].try_into().unwrap());
                s[..8].copy_from_slice(&args[0].to_le_bytes());
                [prev; 8]
            }),
        )
        .unwrap();
    let c = rt.client(0, 1);
    c.call(ep, [111; 8]).unwrap();
    // Same worker, same held CD: the marker must persist.
    assert_eq!(c.call(ep, [222; 8]).unwrap()[0], 111);
    assert_eq!(c.call(ep, [0; 8]).unwrap()[0], 222);
}

#[test]
fn async_call_completes_and_caller_continues() {
    let rt = Runtime::new(1);
    let ep = rt
        .bind(
            "slowish",
            EntryOptions::default(),
            Arc::new(|ctx| {
                std::thread::sleep(Duration::from_millis(5));
                [ctx.args[0] + 1; 8]
            }),
        )
        .unwrap();
    let c = rt.client(0, 1);
    let pending = c.call_async(ep, [41; 8]).unwrap();
    // We got control back before completion (the worker sleeps 5ms).
    let done_immediately = pending.is_done();
    let rets = pending.wait();
    assert_eq!(rets, [42; 8]);
    assert!(!done_immediately || rets == [42; 8]);
    assert_eq!(rt.stats.async_calls(), 1);
}

#[test]
fn upcall_has_no_caller_program() {
    let rt = Runtime::new(1);
    let ep = rt
        .bind(
            "handler",
            EntryOptions::default(),
            Arc::new(|ctx| [ctx.caller_program as u64, ctx.args[0], 0, 0, 0, 0, 0, 0]),
        )
        .unwrap();
    let up = rt.upcall(0, ep, [5; 8]).unwrap();
    let rets = up.wait();
    assert_eq!(rets[0], 0, "upcalls carry program 0");
    assert_eq!(rets[1], 5);
    assert_eq!(rt.stats.upcalls(), 1);
}

#[test]
fn burst_grows_worker_pool_frank_style() {
    let rt = Runtime::new(1);
    let ep = rt
        .bind(
            "slow",
            EntryOptions::default(),
            Arc::new(|ctx| {
                std::thread::sleep(Duration::from_millis(20));
                ctx.args
            }),
        )
        .unwrap();
    let c = rt.client(0, 1);
    // Three overlapping async calls against one pre-spawned worker: the
    // pool must grow (dynamic worker creation).
    let a = c.call_async(ep, [1; 8]).unwrap();
    let b = c.call_async(ep, [2; 8]).unwrap();
    let d = c.call_async(ep, [3; 8]).unwrap();
    assert_eq!(a.wait()[0], 1);
    assert_eq!(b.wait()[0], 2);
    assert_eq!(d.wait()[0], 3);
    assert!(rt.stats.workers_created() >= 2);
    assert!(rt.stats.frank_redirects() >= 2);
}

#[test]
fn concurrent_clients_on_distinct_vcpus() {
    let rt = Runtime::new(4);
    let ep = rt.bind("echo", EntryOptions::default(), Arc::new(|c| c.args)).unwrap();
    let mut handles = Vec::new();
    for v in 0..4 {
        let c = rt.client(v, v as ProgramId + 1);
        handles.push(std::thread::spawn(move || {
            for i in 0..100u64 {
                assert_eq!(c.call(ep, [i; 8]).unwrap(), [i; 8]);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(rt.stats.calls(), 400);
}

#[test]
fn soft_kill_rejects_new_calls_then_drains() {
    let rt = Runtime::new(1);
    let ep = rt.bind("victim", EntryOptions::default(), Arc::new(|c| c.args)).unwrap();
    let c = rt.client(0, 9);
    c.call(ep, [1; 8]).unwrap();
    rt.soft_kill(ep, 0).unwrap();
    assert_eq!(c.call(ep, [2; 8]), Err(RtError::EntryDead(ep)));
    rt.wait_drained(ep).unwrap();
    assert_eq!(c.call(ep, [3; 8]), Err(RtError::EntryDead(ep)));
    // Double kill reports dead.
    assert_eq!(rt.soft_kill(ep, 0), Err(RtError::EntryDead(ep)));
}

#[test]
fn hard_kill_aborts_in_flight_call() {
    let rt = Runtime::new(1);
    let ep = rt
        .bind(
            "doomed",
            EntryOptions::default(),
            Arc::new(|ctx| {
                std::thread::sleep(Duration::from_millis(30));
                ctx.args
            }),
        )
        .unwrap();
    let c = rt.client(0, 9);
    let rt2 = Arc::clone(&rt);
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(5));
        rt2.hard_kill(ep, 0).unwrap();
    });
    let r = c.call(ep, [1; 8]);
    killer.join().unwrap();
    assert_eq!(r, Err(RtError::Aborted(ep)));
}

#[test]
fn reclaim_allows_rebinding_at_same_id() {
    let rt = Runtime::new(1);
    let opts = EntryOptions { want_ep: Some(37), ..Default::default() };
    let ep = rt.bind("first", opts, Arc::new(|_| [1; 8])).unwrap();
    assert_eq!(ep, 37);
    // The slot is taken while live.
    assert_eq!(
        rt.bind("second", EntryOptions { want_ep: Some(37), ..Default::default() }, Arc::new(|_| [2; 8])),
        Err(RtError::TableFull)
    );
    rt.hard_kill(ep, 0).unwrap();
    rt.reclaim_slot(ep, 0).unwrap();
    let ep2 = rt
        .bind("second", EntryOptions { want_ep: Some(37), ..Default::default() }, Arc::new(|_| [2; 8]))
        .unwrap();
    assert_eq!(ep2, 37);
    let c = rt.client(0, 1);
    assert_eq!(c.call(ep2, [0; 8]).unwrap()[0], 2);
}

#[test]
fn exchange_swaps_handler_online() {
    let rt = Runtime::new(1);
    let ep = rt.bind("svc", EntryOptions::default(), Arc::new(|_| [1; 8])).unwrap();
    let c = rt.client(0, 1);
    assert_eq!(c.call(ep, [0; 8]).unwrap()[0], 1);
    rt.exchange(ep, Arc::new(|_| [2; 8]), 0).unwrap();
    assert_eq!(c.call(ep, [0; 8]).unwrap()[0], 2);
}

#[test]
fn ownership_enforced_for_kills() {
    let rt = Runtime::new(1);
    let opts = EntryOptions { owner: 5, ..Default::default() };
    let ep = rt.bind("owned", opts, Arc::new(|c| c.args)).unwrap();
    assert_eq!(rt.soft_kill(ep, 6), Err(RtError::NotOwner));
    assert_eq!(rt.hard_kill(ep, 6), Err(RtError::NotOwner));
    rt.soft_kill(ep, 5).unwrap();
}

#[test]
fn worker_initialization_self_replaces_handler() {
    // §4.5.3: the first call enters the initialization routine, which
    // changes the worker's own call-handling routine.
    let rt = Runtime::new(1);
    let init_runs = Arc::new(AtomicU64::new(0));
    let init_runs2 = Arc::clone(&init_runs);
    let ep = rt
        .bind(
            "lazy",
            EntryOptions::default(),
            Arc::new(move |ctx| {
                // One-time initialization...
                init_runs2.fetch_add(1, Ordering::SeqCst);
                // ...then swap in the steady-state handler for this worker.
                ctx.set_worker_handler(Arc::new(|ctx| [ctx.args[0] + 100; 8]));
                [ctx.args[0] + 1000; 8]
            }),
        )
        .unwrap();
    let c = rt.client(0, 1);
    assert_eq!(c.call(ep, [1; 8]).unwrap()[0], 1001, "first call runs init");
    assert_eq!(c.call(ep, [2; 8]).unwrap()[0], 102, "subsequent calls use the new routine");
    assert_eq!(c.call(ep, [3; 8]).unwrap()[0], 103);
    assert_eq!(init_runs.load(Ordering::SeqCst), 1);
}

#[test]
fn shrink_reaps_surplus_workers() {
    let rt = Runtime::new(1);
    let opts = EntryOptions { initial_workers: 4, ..Default::default() };
    let ep = rt.bind("wide", opts, Arc::new(|c| c.args)).unwrap();
    let reaped = rt.shrink_workers(ep, 0, 1).unwrap();
    assert_eq!(reaped, 3);
    // Still functional with the remaining worker.
    let c = rt.client(0, 1);
    assert_eq!(c.call(ep, [5; 8]).unwrap(), [5; 8]);
}

#[test]
fn distinct_services_do_not_interfere() {
    let rt = Runtime::new(2);
    let add = rt.bind("add", EntryOptions::default(), Arc::new(|c| [c.args[0] + c.args[1]; 8])).unwrap();
    let mul = rt.bind("mul", EntryOptions::default(), Arc::new(|c| [c.args[0] * c.args[1]; 8])).unwrap();
    let c0 = rt.client(0, 1);
    let c1 = rt.client(1, 2);
    assert_eq!(c0.call(add, [3, 4, 0, 0, 0, 0, 0, 0]).unwrap()[0], 7);
    assert_eq!(c1.call(mul, [3, 4, 0, 0, 0, 0, 0, 0]).unwrap()[0], 12);
    assert_eq!(rt.ns_lookup("add"), Some(add));
    assert_eq!(rt.ns_lookup("mul"), Some(mul));
}

#[test]
fn nested_call_from_handler() {
    let rt = Runtime::new(1);
    let inner = rt.bind("inner", EntryOptions::default(), Arc::new(|c| [c.args[0] * 2; 8])).unwrap();
    let rt2 = Arc::clone(&rt);
    let outer = rt
        .bind(
            "outer",
            EntryOptions::default(),
            Arc::new(move |ctx| {
                let c = rt2.client(ctx.vcpu, 999);
                let r = c.call(inner, [ctx.args[0] + 1; 8]).unwrap();
                [r[0] + 5; 8]
            }),
        )
        .unwrap();
    let c = rt.client(0, 1);
    // (10 + 1) * 2 + 5 = 27
    assert_eq!(c.call(outer, [10; 8]).unwrap()[0], 27);
}

#[test]
fn panicking_handler_is_isolated_like_a_message_failure() {
    // §2: the paper chose worker processes so failure modes "more closely
    // follow those of a message exchange". A handler that panics must not
    // hang the client, kill the worker pool, or affect other services.
    let rt = Runtime::new(1);
    let bomb = rt
        .bind(
            "bomb",
            EntryOptions::default(),
            Arc::new(|ctx| {
                if ctx.args[0] == 13 {
                    panic!("injected server fault");
                }
                [ctx.args[0] + 1; 8]
            }),
        )
        .unwrap();
    let echo = rt.bind("echo", EntryOptions::default(), Arc::new(|c| c.args)).unwrap();
    let client = rt.client(0, 1);

    assert_eq!(client.call(bomb, [1; 8]).unwrap()[0], 2, "healthy call works");
    assert_eq!(client.call(bomb, [13; 8]), Err(RtError::ServerFault(bomb)));
    // The same service keeps serving afterwards; the fault consumed no pool.
    assert_eq!(client.call(bomb, [5; 8]).unwrap()[0], 6);
    assert_eq!(client.call(echo, [9; 8]).unwrap(), [9; 8], "other services untouched");
    assert_eq!(rt.stats.server_faults(), 1);
    // Repeated faults stay contained.
    for _ in 0..10 {
        assert_eq!(client.call(bomb, [13; 8]), Err(RtError::ServerFault(bomb)));
    }
    assert_eq!(client.call(bomb, [1; 8]).unwrap()[0], 2);
}

#[test]
fn payload_calls_round_trip_bulk_data() {
    // §4.2 analogue: a "file read" service that uppercases the request
    // payload in place and returns it.
    let rt = Runtime::new(1);
    let ep = rt
        .bind(
            "upper",
            EntryOptions::default(),
            Arc::new(|ctx| {
                let len = ctx.args[0] as usize;
                let s = ctx.scratch();
                for b in &mut s[..len] {
                    *b = b.to_ascii_uppercase();
                }
                [0, 0, 0, 0, 0, 0, 0, len as u64]
            }),
        )
        .unwrap();
    let client = rt.client(0, 1);
    let req = b"hello, protected procedure calls".to_vec();
    let (rets, resp) = client
        .call_with_payload(ep, [req.len() as u64, 0, 0, 0, 0, 0, 0, 0], &req)
        .unwrap();
    assert_eq!(rets[7] as usize, req.len());
    assert_eq!(resp, b"HELLO, PROTECTED PROCEDURE CALLS");
    // A full-page payload works too.
    let big = vec![b'a'; ppc_rt::slot::SCRATCH_BYTES];
    let (rets, resp) =
        client.call_with_payload(ep, [big.len() as u64, 0, 0, 0, 0, 0, 0, 0], &big).unwrap();
    assert_eq!(rets[7] as usize, big.len());
    assert!(resp.iter().all(|b| *b == b'A'));
}

#[test]
#[should_panic(expected = "payload exceeds")]
fn oversized_payload_panics() {
    let rt = Runtime::new(1);
    let ep = rt.bind("x", EntryOptions::default(), Arc::new(|c| c.args)).unwrap();
    let client = rt.client(0, 1);
    let too_big = vec![0u8; ppc_rt::slot::SCRATCH_BYTES + 1];
    let _ = client.call_with_payload(ep, [0; 8], &too_big);
}

#[test]
fn runtime_drop_joins_all_workers() {
    // Regression guard: dropping the runtime must not hang or leak
    // threads that keep the test binary alive.
    for _ in 0..5 {
        let rt = Runtime::new(2);
        let ep = rt.bind("x", EntryOptions { initial_workers: 2, ..Default::default() }, Arc::new(|c| c.args)).unwrap();
        let c = rt.client(1, 1);
        c.call(ep, [1; 8]).unwrap();
        drop(rt);
    }
}

#[test]
fn table_full_with_want_ep_out_of_range() {
    let rt = Runtime::new(1);
    let opts = EntryOptions { want_ep: Some(ppc_rt::MAX_ENTRIES), ..Default::default() };
    assert_eq!(
        rt.bind("bad", opts, Arc::new(|c| c.args)),
        Err(RtError::UnknownEntry(ppc_rt::MAX_ENTRIES))
    );
}

// ---- hand-off fast path: inline dispatch, spin rendezvous, purity ----

#[test]
fn inline_entry_runs_on_caller_thread() {
    let rt = Runtime::new(1);
    let handler_thread = Arc::new(parking_lot::Mutex::new(None));
    let ht = Arc::clone(&handler_thread);
    let ep = rt
        .bind(
            "inline-echo",
            EntryOptions { inline_ok: true, ..Default::default() },
            Arc::new(move |ctx| {
                *ht.lock() = Some(std::thread::current().id());
                ctx.args
            }),
        )
        .unwrap();
    let c = rt.client(0, 9);
    assert_eq!(c.call(ep, [5; 8]).unwrap(), [5; 8]);
    // The handler ran on this very thread — no hand-off happened.
    assert_eq!(handler_thread.lock().unwrap(), std::thread::current().id());
    assert_eq!(rt.stats.inline_calls(), 1);
    assert_eq!(rt.stats.calls(), 1);
}

#[test]
fn inline_entry_supports_payload_and_faults() {
    let rt = Runtime::new(1);
    let ep = rt
        .bind(
            "inline-upper",
            EntryOptions { inline_ok: true, ..Default::default() },
            Arc::new(|ctx| {
                let n = ctx.args[0] as usize;
                let scratch = ctx.scratch();
                for b in &mut scratch[..n] {
                    b.make_ascii_uppercase();
                }
                [0, 0, 0, 0, 0, 0, 0, n as u64]
            }),
        )
        .unwrap();
    let c = rt.client(0, 9);
    let (rets, resp) = c.call_with_payload(ep, [5, 0, 0, 0, 0, 0, 0, 0], b"hello").unwrap();
    assert_eq!(rets[7], 5);
    assert_eq!(resp, b"HELLO");

    let boom = rt
        .bind(
            "inline-boom",
            EntryOptions { inline_ok: true, ..Default::default() },
            Arc::new(|_| panic!("inline fault")),
        )
        .unwrap();
    assert_eq!(c.call(boom, [0; 8]), Err(RtError::ServerFault(boom)));
    assert_eq!(rt.stats.server_faults(), 1);
    // The fault is contained: the inline entry still serves.
    assert_eq!(c.call(ep, [0; 8]).unwrap()[7], 0);
}

#[test]
fn async_to_inline_entry_still_hands_off() {
    let rt = Runtime::new(1);
    let ep = rt
        .bind(
            "inline-echo",
            EntryOptions { inline_ok: true, ..Default::default() },
            Arc::new(|ctx| ctx.args),
        )
        .unwrap();
    let c = rt.client(0, 9);
    let pending = c.call_async(ep, [7; 8]).unwrap();
    assert_eq!(pending.wait(), [7; 8]);
    assert_eq!(rt.stats.async_calls(), 1);
    assert_eq!(rt.stats.inline_calls(), 0);
}

#[test]
fn warm_path_is_pure_fast_path() {
    // The acceptance gate for the hand-off rework: once warmed (the
    // bind-time worker and CD exist), a stream of sync calls must never
    // leave the fast path — no Frank redirections, no worker growth, no
    // CD growth. Combined with the fast path's construction (lock-free
    // pools, OnceLock unpark target, Relaxed sharded counters, Acquire
    // shutdown checks, vCPU-local epoch/lifecycle claims), this pins
    // "no Mutex/Condvar, no writes to another vCPU's cache lines"
    // behavior.
    let (rt, ep) = echo_rt(1);
    let c = rt.client(0, 1);
    c.call(ep, [0; 8]).unwrap(); // warm
    let warm = rt.stats.snapshot();
    for i in 0..500u64 {
        assert_eq!(c.call(ep, [i; 8]).unwrap(), [i; 8]);
    }
    let delta = rt.stats.snapshot().since(&warm);
    assert_eq!(delta.frank_redirects, 0, "warm path hit the Frank slow path");
    assert_eq!(delta.workers_created, 0);
    assert_eq!(delta.cds_created, 0);
    assert_eq!(delta.calls, 500);
    // Every hand-off rendezvous is accounted as exactly one spin or park.
    assert_eq!(delta.spin_waits + delta.park_waits, 500);
}

#[test]
fn spin_policy_roundtrip_and_modes_complete() {
    use ppc_rt::SpinPolicy;
    let (rt, ep) = echo_rt(1);
    assert_eq!(rt.spin_policy(), SpinPolicy::Adaptive);
    let c = rt.client(0, 1);
    for policy in [SpinPolicy::ParkOnly, SpinPolicy::Fixed(1 << 12), SpinPolicy::Adaptive] {
        rt.set_spin_policy(policy);
        assert_eq!(rt.spin_policy(), policy);
        for i in 0..50u64 {
            assert_eq!(c.call(ep, [i; 8]).unwrap(), [i; 8]);
        }
    }
    // ParkOnly never spins a budget: a rendezvous that does not find
    // DONE already set goes straight to the bounded escalation
    // (timeslice donation), then either resolves in userspace
    // (spin_waits) or parks (park_waits). At least the cold first call
    // must have escalated; warm calls may find DONE immediately.
    assert!(rt.stats.spin_escalations() >= 1);
    // Every hand-off rendezvous still accounts as exactly one of the two.
    assert_eq!(rt.stats.spin_waits() + rt.stats.park_waits(), 150);
    assert_eq!(rt.stats.calls(), 150);
}
