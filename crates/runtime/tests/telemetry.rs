//! Telemetry-plane integration tests: the sampler's windowed deltas
//! against brute-force recomputation, the std-only HTTP endpoints, the
//! SLO watchdog (alert edge, flight event, Frank nudge), exporter
//! completeness driven from the `counters!` name list, and the
//! `schema_version` stamp.
//!
//! Everything runs against the public `Runtime` surface; the ring and
//! window mechanics have unit tests in `telemetry.rs` itself.

use std::sync::Arc;
use std::time::Duration;

use ppc_rt::export::{self, Json};
use ppc_rt::http::http_get;
use ppc_rt::obs::KINDS;
use ppc_rt::telemetry::{SloMetric, SloRule, DEFAULT_SERIES_DEPTH, WINDOWS};
use ppc_rt::{
    EntryOptions, FlightKind, LatencyKind, Runtime, RuntimeOptions, Snapshot,
};

/// A runtime with a fast sampler tick (10 ms keeps the tests quick
/// without making tick-boundary races likely).
fn telemetry_rt(n_vcpus: usize, rules: Vec<SloRule>) -> Arc<Runtime> {
    Runtime::with_runtime_options(
        n_vcpus,
        RuntimeOptions {
            telemetry_tick: Some(Duration::from_millis(10)),
            telemetry_depth: DEFAULT_SERIES_DEPTH,
            slo_rules: rules,
            ..Default::default()
        },
    )
}

/// The acceptance-criteria test: a 1 s-window quantile recovered from
/// histogram-bucket deltas equals a brute-force recompute over the same
/// samples. Bucket deltas of a cumulative histogram are exactly the
/// window's sample histogram, so the equality is bucket-for-bucket —
/// not approximate.
#[test]
fn windowed_quantile_matches_brute_force() {
    if !cfg!(feature = "obs") {
        return; // histograms are compiled out
    }
    let rt = telemetry_rt(2, Vec::new());
    let tel = rt.telemetry().expect("sampler running");
    assert!(tel.wait_ticks(2), "sampler ticking");

    // A known, skewed sample set spread across vCPUs: a dense body and
    // a sparse tail, exercising interpolation and the exact-max clamp.
    let mut brute = ppc_rt::Histogram::new();
    let t0 = tel.ticks();
    for i in 0..500u64 {
        let ns = 200 + i * 3;
        rt.obs().record(LatencyKind::Call, (i % 2) as usize, ns);
        brute.record(ns);
    }
    for ns in [40_000u64, 900_000, 5_000_000] {
        rt.obs().record(LatencyKind::Call, 0, ns);
        brute.record(ns);
    }
    // Let the sampler observe everything, then read the window
    // immediately (all samples are well inside the last second).
    assert!(tel.wait_ticks(t0 + 2), "sampler advanced past the recording");
    let w = tel.window(Duration::from_secs(1));

    let got = w.hist(LatencyKind::Call);
    assert_eq!(got.count(), brute.count(), "window contains exactly the samples");
    assert_eq!(got.buckets, brute.buckets, "bucket deltas are exact");
    assert_eq!(got.sum_ns, brute.sum_ns);
    assert_eq!(got.max_ns, brute.max_ns, "window max moved, so it is exact");
    for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
        assert_eq!(
            w.quantile_ns(LatencyKind::Call, q),
            brute.quantile(q),
            "q={q} from bucket deltas matches brute-force recompute"
        );
    }
    // Per-vCPU call deltas partition the merged window.
    let per_vcpu: u64 = w.vcpu_call.iter().map(|h| h.count()).sum();
    assert_eq!(per_vcpu, brute.count());
}

/// Counter deltas over a window match the counter movement measured by
/// plain snapshots around it, and rates divide by measured (not
/// nominal) time.
#[test]
fn windowed_counters_match_snapshot_movement() {
    let rt = telemetry_rt(1, Vec::new());
    let tel = rt.telemetry().expect("sampler running");
    assert!(tel.wait_ticks(2));
    let ep = rt
        .bind("svc", EntryOptions { inline_ok: true, ..Default::default() }, Arc::new(|c| c.args))
        .unwrap();
    let client = rt.client(0, 1);

    let before = rt.stats.snapshot();
    let t0 = tel.ticks();
    for i in 0..200u64 {
        client.call(ep, [i; 8]).unwrap();
    }
    assert!(tel.wait_ticks(t0 + 2));
    let moved = rt.stats.snapshot().since(&before);
    let w = tel.window(Duration::from_secs(5));
    assert_eq!(w.counters.calls, moved.calls, "window calls = snapshot movement");
    assert!(w.rate("calls") > 0.0);
    assert!(w.secs() > 0.0);
    // The series endpoint retains the ticks that carried the burst.
    let total_from_series: u64 =
        tel.series(usize::MAX).iter().map(|t| t.counters.calls).sum();
    assert_eq!(total_from_series, moved.calls);
}

/// `serve_metrics` answers every endpoint; `/metrics` round-trips
/// through `parse_prometheus` including a `ppc_rate_*` sample for every
/// counter × window pair — the exporter-completeness check driven from
/// the macro's own name list.
#[test]
fn http_endpoints_roundtrip_and_are_complete() {
    let rt = telemetry_rt(2, Vec::new());
    let tel = rt.telemetry().expect("sampler running");
    rt.obs().set_sample_shift(0);
    let ep = rt
        .bind("svc", EntryOptions { inline_ok: true, ..Default::default() }, Arc::new(|c| c.args))
        .unwrap();
    let client = rt.client(0, 1);
    for i in 0..100u64 {
        client.call(ep, [i; 8]).unwrap();
    }
    // Baseline the tick count AFTER the traffic: if the call loop
    // straddles tick boundaries on a loaded host, ticks taken mid-loop
    // must not count toward the two that prove full series coverage.
    let t0 = tel.ticks();
    assert!(tel.wait_ticks(t0 + 2));

    let server = rt.serve_metrics("127.0.0.1:0").expect("bind metrics server");
    let addr = server.addr();

    // /metrics: parses, and is complete — every counter from the
    // `counters!` list appears both as a cumulative counter and as a
    // windowed rate for every window label.
    let (status, body) = http_get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    let prom = export::parse_prometheus(&body).expect("exposition parses");
    for &name in Snapshot::field_names() {
        assert!(prom.counter(name).is_some(), "counter {name} missing from /metrics");
        for (label, _) in WINDOWS {
            assert!(
                prom.rate(name, label).is_some(),
                "rate {name}/{label} missing from /metrics"
            );
        }
    }
    assert_eq!(prom.counter("calls"), Some(rt.stats.calls()));
    if cfg!(feature = "obs") {
        assert!(prom.hist("call").is_some(), "call histogram missing");
    }

    // /json: parses; counters object is complete; telemetry member
    // carries every window and (empty) alerts.
    let (status, body) = http_get(addr, "/json").unwrap();
    assert_eq!(status, 200);
    let doc = Json::parse(&body).expect("/json parses");
    assert_eq!(export::schema_version_of(&doc), Some(export::SCHEMA_VERSION));
    let counters = doc.get("counters").expect("counters member");
    for &name in Snapshot::field_names() {
        assert!(counters.get(name).is_some(), "counter {name} missing from /json");
    }
    let telemetry = doc.get("telemetry").expect("telemetry member");
    let windows = telemetry.get("windows").expect("windows member");
    for (label, _) in WINDOWS {
        let w = windows.get(label).unwrap_or_else(|| panic!("window {label} missing"));
        let rates = w.get("rates").expect("rates member");
        for &name in Snapshot::field_names() {
            assert!(rates.get(name).is_some(), "rate {name} missing from {label}");
        }
    }
    assert_eq!(telemetry.get("alerts").and_then(Json::as_arr).map(<[_]>::len), Some(0));

    // /series: parses, ticks carry per-vCPU counter objects.
    let (status, body) = http_get(addr, "/series").unwrap();
    assert_eq!(status, 200);
    let doc = Json::parse(&body).expect("/series parses");
    let ticks = doc.get("ticks").and_then(Json::as_arr).expect("ticks array");
    assert!(!ticks.is_empty());
    let calls_from_series: u64 = ticks
        .iter()
        .map(|t| t.get("counters").and_then(|c| c.get("calls")).and_then(Json::as_u64).unwrap())
        .sum();
    assert_eq!(calls_from_series, rt.stats.calls());
    assert_eq!(
        ticks[0].get("per_vcpu").and_then(Json::as_arr).map(<[_]>::len),
        Some(2),
        "one per-vCPU delta object per vCPU"
    );

    // /trace parses as a Chrome trace document; / and 404 behave.
    let (status, body) = http_get(addr, "/trace").unwrap();
    assert_eq!(status, 200);
    assert!(export::load_chrome_trace(&body).is_ok());
    let (status, body) = http_get(addr, "/").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("/metrics"));
    let (status, _) = http_get(addr, "/nope").unwrap();
    assert_eq!(status, 404);
    let (status, body) = http_get(addr, "/diagnostics").unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("ppc-rt diagnostics"));

    drop(server); // joins the accept loop
}

/// JSON exporter completeness without HTTP (the `--no-default-features`
/// half of the satellite: counters are always live even with
/// histograms compiled out).
#[test]
fn export_json_is_complete_from_the_name_list() {
    let rt = Runtime::new(1);
    rt.obs().set_sample_shift(0);
    let ep = rt
        .bind("svc", EntryOptions { inline_ok: true, ..Default::default() }, Arc::new(|c| c.args))
        .unwrap();
    let client = rt.client(0, 1);
    for i in 0..10u64 {
        client.call(ep, [i; 8]).unwrap();
    }
    let doc = Json::parse(&rt.export_json().to_string()).unwrap();
    assert_eq!(export::schema_version_of(&doc), Some(export::SCHEMA_VERSION));
    let counters = doc.get("counters").expect("counters member");
    for &name in Snapshot::field_names() {
        assert!(counters.get(name).is_some(), "counter {name} missing from JSON");
    }
    if cfg!(feature = "obs") {
        // Feed every histogram kind, then every kind must surface.
        for (i, &kind) in KINDS.iter().enumerate() {
            rt.obs().record(kind, 0, 100 * (i as u64 + 1));
        }
        let doc = Json::parse(&rt.export_json().to_string()).unwrap();
        let latency = doc.get("latency_ns").expect("latency member");
        for kind in KINDS {
            assert!(
                latency.get(kind.label()).is_some(),
                "kind {} missing from JSON latency",
                kind.label()
            );
        }
        let prom = export::parse_prometheus(&rt.export_prometheus()).unwrap();
        for kind in KINDS {
            assert!(
                prom.hist(kind.label()).is_some(),
                "kind {} missing from Prometheus exposition",
                kind.label()
            );
        }
    }
}

/// An injected SLO violation: the rule fires, the rising edge lands in
/// the flight ring as `FlightKind::Alert`, and `diagnostics()` grows an
/// alerts section naming the rule.
#[test]
fn slo_watchdog_fires_alert_and_flight_event() {
    let rules = vec![SloRule {
        name: "call-rate-ceiling",
        metric: SloMetric::Rate("calls"),
        window: Duration::from_millis(100),
        threshold: 1.0, // ~one call/s — any real burst burns this
        burn_factor: 1.0,
        nudge_frank: false,
    }];
    // A roomy flight ring: the Alert event must survive the Inline
    // events the traffic keeps recording around it.
    let rt = Runtime::with_runtime_options(
        1,
        RuntimeOptions {
            telemetry_tick: Some(Duration::from_millis(10)),
            slo_rules: rules,
            flight_capacity: 4096,
            ..Default::default()
        },
    );
    let tel = rt.telemetry().expect("sampler running");
    let ep = rt
        .bind("svc", EntryOptions { inline_ok: true, ..Default::default() }, Arc::new(|c| c.args))
        .unwrap();
    let client = rt.client(0, 1);

    // Sustain traffic across ticks until the rule fires (both burn
    // windows must see the burst), then stop immediately so the Alert
    // stays in the ring.
    let t0 = tel.ticks();
    loop {
        for i in 0..100u64 {
            client.call(ep, [i; 8]).unwrap();
        }
        if tel.alerts()[0].fired >= 1 {
            break;
        }
        assert!(tel.ticks() < t0 + 500, "rule never fired: {:?}", tel.alerts());
    }
    let alerts = tel.alerts();
    assert_eq!(alerts.len(), 1);
    let a = &alerts[0];
    assert!(a.fired >= 1, "rule fired at least one rising edge");
    assert!(a.measured_slow > 1.0, "measured {} calls/s", a.measured_slow);
    assert!(tel.firing() <= 1);

    let events = rt.flight().snapshot(0);
    assert!(
        events.iter().any(|e| e.kind == FlightKind::Alert),
        "Alert event in the flight ring: {events:?}"
    );
    let diag = rt.diagnostics();
    assert!(diag.contains("alerts: 1 rule(s)"), "{diag}");
    assert!(diag.contains("call-rate-ceiling"), "{diag}");

    // Quiesce: traffic stops, the windows drain, the rule un-fires.
    let t1 = tel.ticks();
    assert!(tel.wait_ticks(t1 + 25));
    assert_eq!(tel.firing(), 0, "rule cleared after the burst: {:?}", tel.alerts());
}

/// A firing rule with `nudge_frank` invokes Frank maintenance: idle
/// workers above the watermark get reaped while the burn lasts.
#[test]
fn sustained_burn_nudges_frank() {
    let rules = vec![SloRule {
        name: "pool-pressure",
        metric: SloMetric::Rate("calls"),
        window: Duration::from_millis(100),
        threshold: 1.0,
        burn_factor: 1.0,
        nudge_frank: true,
    }];
    let rt = telemetry_rt(1, rules);
    let tel = rt.telemetry().expect("sampler running");
    // Hand-off entry (no inline): calls create pool workers that then
    // sit idle.
    let ep = rt.bind("svc", EntryOptions::default(), Arc::new(|c| c.args)).unwrap();
    let client = rt.client(0, 1);
    for i in 0..5u64 {
        client.call(ep, [i; 8]).unwrap();
    }
    assert!(rt.idle_workers(ep).unwrap() >= 1, "warm pool before the nudge");
    rt.set_idle_watermark(0);

    // Keep burning until the watchdog's maintenance pass empties the
    // idle pool (bounded by wait_ticks' own 10 s timeout).
    let t0 = tel.ticks();
    while rt.idle_workers(ep).unwrap() > 0 {
        for i in 0..50u64 {
            client.call(ep, [i; 8]).unwrap();
        }
        assert!(tel.wait_ticks(tel.ticks() + 1), "sampler stalled");
        assert!(tel.ticks() < t0 + 500, "nudge never reaped the idle pool");
    }
    assert!(tel.alerts()[0].fired >= 1);
}

/// Telemetry lifecycle: late start is idempotent, `stop_telemetry` is
/// clean, and dropping the runtime joins the sampler without hanging.
#[test]
fn telemetry_lifecycle() {
    let rt = Runtime::new(1);
    assert!(rt.telemetry().is_none(), "no sampler unless asked");
    let t1 = rt.start_telemetry(Duration::from_millis(10), 64, Vec::new());
    let t2 = rt.start_telemetry(Duration::from_millis(99), 128, Vec::new());
    assert!(Arc::ptr_eq(&t1, &t2), "second start returns the running sampler");
    assert_eq!(t2.tick(), Duration::from_millis(10));
    assert_eq!(t1.depth(), 64);
    assert!(t1.wait_ticks(2));
    rt.stop_telemetry();
    assert!(rt.telemetry().is_none());
    rt.stop_telemetry(); // idempotent

    // Drop with a live sampler: Drop must stop and join it.
    let rt = telemetry_rt(1, Vec::new());
    rt.telemetry().unwrap().wait_ticks(2);
    drop(rt);
}

/// `schema_version` mismatch detection: current documents pass, old or
/// unstamped ones warn (return false) instead of mis-parsing.
#[test]
fn schema_version_check() {
    let rt = Runtime::new(1);
    let doc = rt.export_json();
    assert!(export::check_schema_version(&doc, "fresh export"));
    let old = Json::obj([("schema_version", Json::Num(0.0))]);
    assert!(!export::check_schema_version(&old, "stale artifact"));
    let unstamped = Json::obj([("counters", Json::Obj(vec![]))]);
    assert!(!export::check_schema_version(&unstamped, "pre-stamp artifact"));
    assert_eq!(export::schema_version_of(&unstamped), None);
}
