//! Per-processor scheduling.
//!
//! Each processor owns a private ready queue in local memory — PPC
//! hand-off dispatch bypasses it entirely (client and worker "share the
//! processor in a manner similar to handoff scheduling"), but asynchronous
//! PPC requests put the *caller* back on it, and workers that complete with
//! no waiting caller pick the next process from it.

use std::collections::VecDeque;

use hector_sim::cpu::{CostCategory, Cpu};
use hector_sim::sym::{MemAttrs, Region};

use crate::process::Pid;

/// A processor-local FIFO ready queue.
#[derive(Clone, Debug)]
pub struct ReadyQueue {
    q: VecDeque<Pid>,
    /// Symbolic memory of the queue structure (local to the owning CPU).
    mem: Region,
}

impl ReadyQueue {
    /// A queue whose links live in `mem` (allocate on the owning CPU).
    pub fn new(mem: Region) -> Self {
        ReadyQueue { q: VecDeque::new(), mem }
    }

    fn attrs(&self) -> MemAttrs {
        MemAttrs::cached_private(self.mem.base.module())
    }

    /// Enqueue `pid` (charged: head/tail pointer update, link store).
    pub fn enqueue(&mut self, cpu: &mut Cpu, pid: Pid) {
        let attrs = self.attrs();
        cpu.load(self.mem.at(0), attrs); // tail pointer
        cpu.store(self.mem.at(8), attrs); // link the PCB
        cpu.store(self.mem.at(0), attrs); // new tail
        cpu.exec(3);
        self.q.push_back(pid);
    }

    /// Dequeue the next ready process (charged).
    pub fn dequeue(&mut self, cpu: &mut Cpu) -> Option<Pid> {
        let attrs = self.attrs();
        cpu.load(self.mem.at(0), attrs); // head pointer
        cpu.exec(2);
        let pid = self.q.pop_front();
        if pid.is_some() {
            cpu.store(self.mem.at(0), attrs); // advance head
        }
        pid
    }

    /// Queue length (uncharged, diagnostics).
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Peek without dequeuing (uncharged, diagnostics).
    pub fn peek(&self) -> Option<Pid> {
        self.q.front().copied()
    }
}

/// Save the minimum processor state of the outgoing process and load the
/// incoming one — the hand-off switch at the heart of a PPC call. Charged
/// to `KernelSaveRestore`, touching only the two PCBs (CPU-local memory
/// for processes homed here).
pub fn handoff_save_restore(cpu: &mut Cpu, from_pcb: Region, to_pcb: Region, words: u64) {
    cpu.with_category(CostCategory::KernelSaveRestore, |cpu| {
        let fa = MemAttrs::cached_private(from_pcb.base.module());
        let ta = MemAttrs::cached_private(to_pcb.base.module());
        cpu.store_words(from_pcb.base, words, fa);
        cpu.exec(2); // swap current-process pointer
        cpu.load_words(to_pcb.base, words, ta);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Process;
    use hector_sim::{Machine, MachineConfig};

    #[test]
    fn fifo_order_preserved() {
        let mut m = Machine::new(MachineConfig::hector(1));
        let mem = m.alloc_on(0, 64, "rq");
        let mut rq = ReadyQueue::new(mem);
        let cpu = m.cpu_mut(0);
        rq.enqueue(cpu, 1);
        rq.enqueue(cpu, 2);
        rq.enqueue(cpu, 3);
        assert_eq!(rq.len(), 3);
        assert_eq!(rq.dequeue(cpu), Some(1));
        assert_eq!(rq.dequeue(cpu), Some(2));
        assert_eq!(rq.dequeue(cpu), Some(3));
        assert_eq!(rq.dequeue(cpu), None);
        assert!(rq.is_empty());
    }

    #[test]
    fn queue_operations_touch_only_local_memory() {
        let mut m = Machine::new(MachineConfig::hector(2));
        let mem = m.alloc_on(1, 64, "rq");
        let mut rq = ReadyQueue::new(mem);
        let cpu = m.cpu_mut(1);
        cpu.begin_measure();
        rq.enqueue(cpu, 9);
        rq.dequeue(cpu);
        assert_eq!(cpu.path_stats().shared_accesses, 0);
    }

    #[test]
    fn handoff_is_cheaper_than_full_register_file() {
        let mut m = Machine::new(MachineConfig::hector(1));
        let a = m.alloc_on(0, 256, "pcb-a");
        let b = m.alloc_on(0, 256, "pcb-b");
        let cpu = m.cpu_mut(0);
        // warm
        handoff_save_restore(cpu, a, b, Process::SWITCH_STATE_WORDS);
        cpu.begin_measure();
        handoff_save_restore(cpu, a, b, Process::SWITCH_STATE_WORDS);
        let warm = cpu.end_measure();
        let ksr = warm.get(CostCategory::KernelSaveRestore);
        assert!(ksr.as_u64() > 0);
        // 2*17 word moves at warm-hit cost: ~4.2 us per switch, two
        // switches per PPC round trip.
        assert!(ksr.as_us() < 5.0, "{}", ksr);
    }
}
