//! The kernel aggregate: machine + address spaces + processes + scheduling.
//!
//! `Kernel` is the substrate object the PPC facility (crate `ppc-core`)
//! operates on. Boot-time construction is uncharged (the paper measures a
//! warmed-up, otherwise idle system); anything that can happen on a call
//! path has a charged variant.

use hector_sim::cpu::{Cpu, CpuId};
use hector_sim::sym::Region;
use hector_sim::tlb::{Asid, ASID_KERNEL};
use hector_sim::{Machine, MachineConfig};

use crate::addrspace::AddressSpace;
use crate::process::{Pid, ProcState, Process, ProgramId};
use crate::sched::{handoff_save_restore, ReadyQueue};

/// The Hurricane kernel.
#[derive(Clone, Debug)]
pub struct Kernel {
    /// The simulated machine.
    pub machine: Machine,
    /// Address spaces, indexed by `Asid` (0 = kernel space).
    pub spaces: Vec<AddressSpace>,
    /// Process table, indexed by `Pid`.
    pub procs: Vec<Process>,
    /// Per-processor ready queues.
    pub ready: Vec<ReadyQueue>,
    /// Per-processor kernel stacks (trap frames land here).
    pub kstacks: Vec<Region>,
    next_program: ProgramId,
}

impl Kernel {
    /// Boot a kernel on a machine with configuration `cfg`.
    pub fn boot(cfg: MachineConfig) -> Self {
        let mut machine = Machine::new(cfg);
        let n = machine.n_cpus();
        let kpt: Vec<Region> = (0..n).map(|c| machine.alloc_on(c, 4096, "kernel-pt")).collect();
        let kernel_space = AddressSpace::new(ASID_KERNEL, "kernel", kpt);
        let ready = (0..n)
            .map(|c| {
                let mem = machine.alloc_on(c, 64, "ready-queue");
                ReadyQueue::new(mem)
            })
            .collect();
        let kstacks = (0..n).map(|c| machine.alloc_page_on(c, "kstack")).collect();
        Kernel {
            machine,
            spaces: vec![kernel_space],
            procs: Vec::new(),
            ready,
            kstacks,
            next_program: 1,
        }
    }

    /// Number of processors.
    pub fn n_cpus(&self) -> usize {
        self.machine.n_cpus()
    }

    /// Mutable access to processor `id`.
    pub fn cpu_mut(&mut self, id: CpuId) -> &mut Cpu {
        self.machine.cpu_mut(id)
    }

    /// Allocate a fresh program identity (the §4.1 authentication token).
    pub fn new_program_id(&mut self) -> ProgramId {
        let id = self.next_program;
        self.next_program += 1;
        id
    }

    /// Create an address space (boot-time, uncharged). Its per-processor
    /// page-table portions are allocated on every CPU so PPC stack-window
    /// PTE writes stay local.
    pub fn create_space(&mut self, name: &str) -> Asid {
        let asid = self.spaces.len() as Asid;
        let n = self.machine.n_cpus();
        let pts: Vec<Region> =
            (0..n).map(|c| self.machine.alloc_on(c, 2048, "pt-local")).collect();
        self.spaces.push(AddressSpace::new(asid, name, pts));
        asid
    }

    /// Create a process (boot-time, uncharged).
    pub fn create_process_boot(
        &mut self,
        asid: Asid,
        home_cpu: CpuId,
        program_id: ProgramId,
    ) -> Pid {
        let pid = self.procs.len();
        let pcb = self.machine.alloc_on(home_cpu, 256, "pcb");
        let ustack = self.machine.alloc_page_on(home_cpu, "ustack");
        self.procs.push(Process {
            pid,
            program_id,
            asid,
            state: ProcState::Ready,
            home_cpu,
            pcb,
            ustack,
        });
        pid
    }

    /// Create a process on the call path (charged to the current category
    /// on `cpu`): PCB allocation and initialization. This is what Frank
    /// does when a worker pool runs dry.
    pub fn create_process_charged(
        &mut self,
        cpu_id: CpuId,
        asid: Asid,
        program_id: ProgramId,
    ) -> Pid {
        let pid = self.procs.len();
        let pcb = self.machine.alloc_on(cpu_id, 256, "pcb");
        let ustack = self.machine.alloc_page_on(cpu_id, "ustack");
        let cpu = self.machine.cpu_mut(cpu_id);
        // Allocator work + zeroing/initializing the PCB.
        cpu.exec(80);
        let attrs = hector_sim::sym::MemAttrs::cached_private(cpu_id);
        cpu.store_words(pcb.base, 24, attrs);
        self.procs.push(Process {
            pid,
            program_id,
            asid,
            state: ProcState::Ready,
            home_cpu: cpu_id,
            pcb,
            ustack,
        });
        pid
    }

    /// Put `pid` on `cpu`'s ready queue (charged).
    pub fn enqueue_ready(&mut self, cpu_id: CpuId, pid: Pid) {
        self.procs[pid].state = ProcState::Ready;
        let cpu = self.machine.cpu_mut(cpu_id);
        self.ready[cpu_id].enqueue(cpu, pid);
    }

    /// Take the next ready process on `cpu` (charged).
    pub fn dequeue_ready(&mut self, cpu_id: CpuId) -> Option<Pid> {
        let cpu = self.machine.cpu_mut(cpu_id);
        self.ready[cpu_id].dequeue(cpu)
    }

    /// Hand-off switch on `cpu_id` from process `from` to process `to`:
    /// saves/restores the minimum state (charged to `KernelSaveRestore`)
    /// and installs `to`'s user address space if it differs (charged to
    /// `TlbSetup` when a flush is needed). Calls *into the kernel space*
    /// switch no user context at all — the paper's cheap user-to-kernel
    /// case.
    pub fn handoff_switch(&mut self, cpu_id: CpuId, from: Pid, to: Pid) {
        let from_pcb = self.procs[from].pcb;
        let to_pcb = self.procs[to].pcb;
        let to_asid = self.procs[to].asid;
        let cpu = self.machine.cpu_mut(cpu_id);
        handoff_save_restore(cpu, from_pcb, to_pcb, Process::SWITCH_STATE_WORDS);
        if to_asid != ASID_KERNEL {
            cpu.switch_user_as(to_asid);
        }
        self.procs[from].state = ProcState::Blocked;
        self.procs[to].state = ProcState::Running;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hector_sim::cpu::CostCategory;

    fn kernel(n: usize) -> Kernel {
        Kernel::boot(MachineConfig::hector(n))
    }

    #[test]
    fn boot_creates_kernel_space_and_percpu_state() {
        let k = kernel(4);
        assert_eq!(k.spaces.len(), 1);
        assert_eq!(k.spaces[0].asid, ASID_KERNEL);
        assert_eq!(k.ready.len(), 4);
        assert_eq!(k.kstacks.len(), 4);
        for (c, ks) in k.kstacks.iter().enumerate() {
            assert_eq!(ks.base.module(), c, "kstacks are CPU-local");
        }
    }

    #[test]
    fn spaces_get_sequential_asids() {
        let mut k = kernel(2);
        let a = k.create_space("bob");
        let b = k.create_space("client");
        assert_eq!((a, b), (1, 2));
        assert_eq!(k.spaces[a as usize].name, "bob");
    }

    #[test]
    fn processes_are_homed() {
        let mut k = kernel(2);
        let asid = k.create_space("s");
        let prog = k.new_program_id();
        let pid = k.create_process_boot(asid, 1, prog);
        let p = &k.procs[pid];
        assert_eq!(p.home_cpu, 1);
        assert_eq!(p.pcb.base.module(), 1);
        assert_eq!(p.ustack.base.module(), 1);
    }

    #[test]
    fn charged_creation_costs_cycles() {
        let mut k = kernel(1);
        let asid = k.create_space("s");
        let before = k.machine.cpu(0).clock();
        k.create_process_charged(0, asid, 7);
        assert!(k.machine.cpu(0).clock() > before);
    }

    #[test]
    fn handoff_to_user_space_switches_context() {
        let mut k = kernel(1);
        let asid = k.create_space("server");
        let a = k.create_process_boot(asid, 0, 1);
        let b = k.create_process_boot(asid, 0, 2);
        // Install a's space first.
        k.cpu_mut(0).switch_user_as(asid);
        let before_flushes = k.machine.cpu(0).tlb().user_flush_count();
        k.handoff_switch(0, a, b);
        // Same space: no flush.
        assert_eq!(k.machine.cpu(0).tlb().user_flush_count(), before_flushes);
        assert_eq!(k.procs[a].state, ProcState::Blocked);
        assert_eq!(k.procs[b].state, ProcState::Running);
    }

    #[test]
    fn handoff_to_kernel_space_never_flushes() {
        let mut k = kernel(1);
        let user = k.create_space("client");
        let a = k.create_process_boot(user, 0, 1);
        let b = k.create_process_boot(ASID_KERNEL, 0, 2);
        k.cpu_mut(0).switch_user_as(user);
        let cpu = k.machine.cpu_mut(0);
        cpu.begin_measure();
        k.handoff_switch(0, a, b);
        let bd = k.machine.cpu_mut(0).end_measure();
        assert!(bd.get(CostCategory::TlbSetup).is_zero(), "kernel target needs no TLB work");
        assert!(!bd.get(CostCategory::KernelSaveRestore).is_zero());
    }

    #[test]
    fn ready_queue_roundtrip_through_kernel() {
        let mut k = kernel(2);
        let asid = k.create_space("s");
        let p = k.create_process_boot(asid, 1, 1);
        k.enqueue_ready(1, p);
        assert_eq!(k.procs[p].state, ProcState::Ready);
        assert_eq!(k.dequeue_ready(1), Some(p));
        assert_eq!(k.dequeue_ready(1), None);
    }
}
