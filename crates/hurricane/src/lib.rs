//! # hurricane-os — the operating-system substrate
//!
//! The paper's PPC facility was "incorporated into the Hurricane operating
//! system running on the Hector shared memory multiprocessor". This crate
//! provides that substrate on top of [`hector_sim`]: address spaces with
//! page tables, processes and their saved register state, per-processor
//! ready queues with hand-off dispatch, trap sequences, Hurricane's
//! pre-existing **message-passing IPC** facility (the baseline the PPC
//! facility replaced), an in-memory file system served by *Bob* the file
//! server, and a disk device with the shared request queue used for
//! cross-processor interactions (§4.3 of the paper).
//!
//! All kernel code here narrates its machine-level behaviour to the
//! simulated [`Cpu`](hector_sim::Cpu), so every operation has a faithful
//! cycle cost and a Figure-2 cost category.

pub mod addrspace;
pub mod disk;
pub mod fs;
pub mod kernel;
pub mod msg;
pub mod process;
pub mod sched;
pub mod trap;

pub use addrspace::AddressSpace;
pub use kernel::Kernel;
pub use process::{Pid, ProcState, Process, ProgramId};
