//! The in-memory file system served by *Bob*, Hurricane's file server.
//!
//! The paper's Figure 3 workload is "independent clients repeatedly
//! requesting the length of an open file from the file server": the base
//! sequential call costs 66 µs, "with half of the time attributable to the
//! IPC facility and half to the file system server", and the only shared
//! state on the path is a **per-file critical section** with "a very small
//! number of memory accesses" — enough to saturate throughput at four
//! processors when every client hits the same file.
//!
//! The service work is therefore modelled in three explicitly separable
//! pieces, so the throughput experiment can replay them under contention:
//!
//! 1. [`FileSystem::lookup_and_check`] — handle validation, program-ID
//!    permission check, open-file-table lookup (per-CPU cached read-mostly
//!    data: scales perfectly);
//! 2. the per-file critical section [`FileSystem::cs_body`] — a handful of
//!    uncached shared accesses updating access accounting, protected by a
//!    per-file lock;
//! 3. [`FileSystem::read_length`] — reading the (read-mostly, cacheable)
//!    metadata and formatting the reply.

use hector_sim::cpu::{CostCategory, Cpu};
use hector_sim::sym::{MemAttrs, Region};
use hector_sim::topology::ModuleId;
use hector_sim::Machine;

/// Handle to an open file.
pub type FileHandle = usize;

/// One open file.
#[derive(Clone, Debug)]
pub struct FileObj {
    /// File name (diagnostics).
    pub name: String,
    /// Current length in bytes — what `GetLength` returns.
    pub length: u64,
    /// Read-mostly metadata (cacheable: read-shared data is safe to cache
    /// even without hardware coherence).
    pub meta: Region,
    /// Mutable shared accounting state (uncached: written by every CPU).
    pub shared: Region,
    /// Home module of the per-file lock (== module of `shared`).
    pub lock_home: ModuleId,
}

/// The file system state owned by Bob.
#[derive(Clone, Debug)]
pub struct FileSystem {
    files: Vec<FileObj>,
    /// Open-file table memory (read-mostly, cacheable).
    oft: Region,
}

/// Instruction/access counts for the GetLength service body; chosen so the
/// sequential GetLength PPC call lands near the paper's 66 µs with ~half in
/// the server, and kept as named constants so tests and benches agree.
pub mod cost_model {
    /// ALU instructions in handle validation + permission check + lookup.
    pub const LOOKUP_EXEC: u64 = 160;
    /// Cached open-file-table / client-state words read during lookup.
    pub const LOOKUP_LOADS: u64 = 18;
    /// ALU instructions in the critical section.
    pub const CS_EXEC: u64 = 16;
    /// Uncached shared accesses in the critical section ("a very small
    /// number of memory accesses").
    pub const CS_SHARED_ACCESSES: u64 = 8;
    /// ALU instructions reading metadata + formatting the reply.
    pub const READ_EXEC: u64 = 120;
    /// Cached metadata words read.
    pub const READ_LOADS: u64 = 14;
}

impl FileSystem {
    /// An empty file system whose open-file table lives on `home` module.
    pub fn new(machine: &mut Machine, home: ModuleId) -> Self {
        let oft = machine.alloc_on(home, 2048, "open-file-table");
        FileSystem { files: Vec::new(), oft }
    }

    /// Create an open file of `length` bytes homed on module `home`.
    pub fn create(
        &mut self,
        machine: &mut Machine,
        name: &str,
        length: u64,
        home: ModuleId,
    ) -> FileHandle {
        let meta = machine.alloc_on(home, 128, "file-meta");
        let shared = machine.alloc_on(home, 64, "file-shared");
        self.files.push(FileObj {
            name: name.to_string(),
            length,
            meta,
            shared,
            lock_home: home,
        });
        self.files.len() - 1
    }

    /// The file behind `h`.
    pub fn file(&self, h: FileHandle) -> &FileObj {
        &self.files[h]
    }

    /// Number of open files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether no files are open.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Set a file's length (e.g. after a simulated write).
    pub fn set_length(&mut self, h: FileHandle, length: u64) {
        self.files[h].length = length;
    }

    /// Phase 1: validate the handle, check the caller's program ID against
    /// the file's permissions, and look the file up in the open-file
    /// table. All cached read-mostly data — scales perfectly.
    pub fn lookup_and_check(&self, cpu: &mut Cpu, h: FileHandle, _caller: u32) -> bool {
        cpu.with_category(CostCategory::ServerTime, |cpu| {
            let oft_attrs = MemAttrs::cached_private(self.oft.base.module());
            cpu.exec(cost_model::LOOKUP_EXEC);
            for i in 0..cost_model::LOOKUP_LOADS {
                cpu.load(self.oft.at((h as u64 * 64 + i * 4) % self.oft.len), oft_attrs);
            }
        });
        h < self.files.len()
    }

    /// Phase 2: the per-file critical section body (accounting update).
    /// The caller is responsible for holding the per-file lock — in
    /// sequential runs charge [`FileSystem::uncontended_lock`] around it,
    /// in DES runs wrap it in `Acquire`/`Release` segments.
    pub fn cs_body(&self, cpu: &mut Cpu, h: FileHandle) {
        let f = &self.files[h];
        cpu.with_category(CostCategory::ServerTime, |cpu| {
            let attrs = MemAttrs::uncached_shared(f.shared.base.module());
            cpu.exec(cost_model::CS_EXEC);
            for i in 0..cost_model::CS_SHARED_ACCESSES {
                if i % 2 == 0 {
                    cpu.load(f.shared.at(i * 8), attrs);
                } else {
                    cpu.store(f.shared.at(i * 8), attrs);
                }
            }
        });
    }

    /// Charge an *uncontended* acquire+release of the per-file lock on
    /// `cpu` (two atomic uncached accesses plus the release store), and
    /// note the acquisition for the invariant statistics.
    pub fn uncontended_lock(&self, cpu: &mut Cpu, h: FileHandle) {
        let f = &self.files[h];
        cpu.with_category(CostCategory::ServerTime, |cpu| {
            let attrs = MemAttrs::uncached_shared(f.lock_home);
            cpu.note_lock_acquire();
            // xmem test-and-set (read-modify-write: two bus ops) + release store.
            cpu.load(f.shared.at(56), attrs);
            cpu.store(f.shared.at(56), attrs);
            cpu.store(f.shared.at(56), attrs);
            cpu.exec(4);
        });
    }

    /// Phase 3: read the length from the (cacheable) metadata and format
    /// the reply registers. Returns the length.
    pub fn read_length(&self, cpu: &mut Cpu, h: FileHandle) -> u64 {
        let f = &self.files[h];
        cpu.with_category(CostCategory::ServerTime, |cpu| {
            let attrs = MemAttrs::cached_private(f.meta.base.module());
            cpu.exec(cost_model::READ_EXEC);
            for i in 0..cost_model::READ_LOADS {
                cpu.load(f.meta.at(i * 4), attrs);
            }
        });
        f.length
    }

    /// The full sequential GetLength service body (phases 1–3 with an
    /// uncontended lock): what Bob's PPC handler runs.
    pub fn get_length_sequential(&self, cpu: &mut Cpu, h: FileHandle, caller: u32) -> u64 {
        let ok = self.lookup_and_check(cpu, h, caller);
        assert!(ok, "invalid handle {h}");
        self.uncontended_lock(cpu, h);
        self.cs_body(cpu, h);
        self.read_length(cpu, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hector_sim::MachineConfig;

    fn setup() -> (Machine, FileSystem) {
        let mut m = Machine::new(MachineConfig::hector(4));
        let fs = FileSystem::new(&mut m, 0);
        (m, fs)
    }

    #[test]
    fn create_and_get_length() {
        let (mut m, mut fs) = setup();
        let h = fs.create(&mut m, "motd", 1234, 0);
        let cpu = m.cpu_mut(0);
        let len = fs.get_length_sequential(cpu, h, 42);
        assert_eq!(len, 1234);
        fs.set_length(h, 99);
        assert_eq!(fs.file(h).length, 99);
    }

    #[test]
    fn server_half_of_66us_budget() {
        // Warm server body should land near 33 us (half the paper's 66 us
        // sequential GetLength), within the calibration tolerance.
        let (mut m, mut fs) = setup();
        let h = fs.create(&mut m, "f", 10, 0);
        let cpu = m.cpu_mut(0);
        fs.get_length_sequential(cpu, h, 1); // warm caches + TLB
        cpu.begin_measure();
        fs.get_length_sequential(cpu, h, 1);
        let bd = cpu.end_measure();
        let us = bd.total().as_us();
        assert!((20.0..45.0).contains(&us), "server body {us:.1} us");
    }

    #[test]
    fn critical_section_is_small_but_shared() {
        let (mut m, mut fs) = setup();
        let h = fs.create(&mut m, "f", 10, 2);
        let cpu = m.cpu_mut(0);
        cpu.begin_measure();
        fs.uncontended_lock(cpu, h);
        fs.cs_body(cpu, h);
        let stats = cpu.path_stats();
        assert_eq!(stats.lock_acquires, 1);
        assert_eq!(
            stats.shared_accesses,
            cost_model::CS_SHARED_ACCESSES + 3,
            "cs body + lock word traffic"
        );
        let bd = cpu.end_measure();
        // ~13 us uncontended: with contention interference this saturates
        // the 66 us call at ~4 processors, the paper's observed knee.
        assert!(bd.total().as_us() < 16.0, "CS must be small: {}", bd.total());
    }

    #[test]
    fn lookup_phase_touches_no_shared_memory() {
        let (mut m, mut fs) = setup();
        let h = fs.create(&mut m, "f", 10, 0);
        let cpu = m.cpu_mut(0);
        cpu.begin_measure();
        fs.lookup_and_check(cpu, h, 7);
        fs.read_length(cpu, h);
        assert_eq!(cpu.path_stats().shared_accesses, 0);
        assert_eq!(cpu.path_stats().lock_acquires, 0);
    }

    #[test]
    fn invalid_handle_detected() {
        let (mut m, fs) = setup();
        let cpu = m.cpu_mut(0);
        assert!(!fs.lookup_and_check(cpu, 5, 7));
    }

    #[test]
    fn distinct_files_have_distinct_shared_state() {
        let (mut m, mut fs) = setup();
        let a = fs.create(&mut m, "a", 1, 0);
        let b = fs.create(&mut m, "b", 2, 1);
        assert_ne!(fs.file(a).shared.base, fs.file(b).shared.base);
        assert_ne!(fs.file(a).lock_home, fs.file(b).lock_home);
    }
}
