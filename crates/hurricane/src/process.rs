//! Processes: the unit of execution and protection.
//!
//! The PPC implementation "uses separate worker processes in the server to
//! service client calls" — workers are ordinary Hurricane processes that
//! are recycled and (re)initialized to the server's call-handling code on
//! each call. A process carries its saved register state in a PCB homed on
//! its *home processor*, so saving/restoring it on the hand-off switch
//! touches only CPU-local memory.

use hector_sim::sym::Region;
use hector_sim::tlb::Asid;
use hector_sim::CpuId;

/// Process identifier.
pub type Pid = usize;

/// The program identity used by servers for authentication (§4.1: callers
/// are identified to servers by their program ID).
pub type ProgramId = u32;

/// Scheduling state of a process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcState {
    /// On a ready queue.
    Ready,
    /// Executing on its home CPU.
    Running,
    /// Blocked (e.g. a PPC caller linked into a call descriptor).
    Blocked,
    /// In a worker pool awaiting a call.
    PooledWorker,
    /// Terminated / slot free.
    Dead,
}

/// A Hurricane process.
#[derive(Clone, Debug)]
pub struct Process {
    /// Identifier (index into the kernel process table).
    pub pid: Pid,
    /// Program the process belongs to (authentication identity).
    pub program_id: ProgramId,
    /// Address space the process executes in.
    pub asid: Asid,
    /// Scheduling state.
    pub state: ProcState,
    /// Processor the process is bound to (PPC processes never migrate on
    /// the fast path — requests are always handled on the caller's CPU).
    pub home_cpu: CpuId,
    /// Symbolic PCB memory (register save area), homed on `home_cpu`.
    pub pcb: Region,
    /// User-level stack (workers: replaced per call by the CD's stack page).
    pub ustack: Region,
}

impl Process {
    /// Number of words of "minimum processor state" saved on a hand-off
    /// switch (the paper's `kernel save/restore` category): return address,
    /// stack/frame pointers, PSR and S/EPSR, plus the few callee registers
    /// the kernel path itself uses — not the full 32-register file, which
    /// hand-off scheduling deliberately avoids (the *caller-saved* user
    /// registers are the client stub's problem, in `user save/restore`).
    pub const SWITCH_STATE_WORDS: u64 = 10;

    /// Words of user-level caller-saved registers the client stub must
    /// preserve around a PPC call (the paper's `user save/restore`
    /// category): the call clobbers the 8 argument/result registers plus
    /// temporaries, so the stub spills the live caller-saved set.
    pub const USER_SAVE_WORDS: u64 = 14;
}

#[cfg(test)]
mod tests {
    use super::*;
    use hector_sim::sym::SymHeap;

    #[test]
    fn process_fields_roundtrip() {
        let mut h = SymHeap::new(2);
        let p = Process {
            pid: 3,
            program_id: 77,
            asid: 4,
            state: ProcState::PooledWorker,
            home_cpu: 2,
            pcb: h.alloc(128),
            ustack: h.alloc_page(),
        };
        assert_eq!(p.pcb.base.module(), 2, "PCB homed on the home cpu");
        assert_eq!(p.state, ProcState::PooledWorker);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn switch_state_is_minimal() {
        // Hand-off scheduling saves far less than a full register file.
        assert!(Process::SWITCH_STATE_WORDS < 32);
        assert!(Process::USER_SAVE_WORDS < 32);
    }
}
