//! The disk device and its shared request queue.
//!
//! §4.3 of the paper: cross-processor interactions are deliberately *not*
//! folded into the PPC fastpath. "Interactions with a disk only involve
//! accesses to shared queues: in the case of a busy disk, appending the
//! request to the end of the disk queue; in the case of an idle disk,
//! additionally adding the disk device driver process to the ready queue."
//! This module implements exactly that protocol.

use std::collections::VecDeque;

use hector_sim::cpu::{CostCategory, Cpu, CpuId};
use hector_sim::sym::{MemAttrs, Region};
use hector_sim::Machine;

use crate::kernel::Kernel;
use crate::process::Pid;

/// A queued disk request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiskRequest {
    /// Block number.
    pub block: u64,
    /// Requesting process (completion notification target).
    pub requester: Pid,
    /// Whether this is a write.
    pub write: bool,
}

/// The disk device: a shared request queue plus a driver process bound to
/// the device's home processor.
#[derive(Clone, Debug)]
pub struct Disk {
    /// Shared queue memory (uncached; accessed from every requesting CPU).
    qmem: Region,
    queue: VecDeque<DiskRequest>,
    /// Whether the device is currently processing a request.
    pub busy: bool,
    /// The driver process.
    pub driver: Pid,
    /// CPU the driver runs on (interrupts are delivered here).
    pub driver_cpu: CpuId,
}

impl Disk {
    /// Create a disk whose driver process `driver` runs on `driver_cpu`.
    pub fn new(machine: &mut Machine, driver: Pid, driver_cpu: CpuId) -> Self {
        let qmem = machine.alloc_on(driver_cpu, 512, "disk-queue");
        Disk { qmem, queue: VecDeque::new(), busy: false, driver, driver_cpu }
    }

    fn charge_queue_lock(&self, cpu: &mut Cpu) {
        let attrs = MemAttrs::uncached_shared(self.qmem.base.module());
        cpu.note_lock_acquire();
        cpu.load(self.qmem.at(0), attrs);
        cpu.store(self.qmem.at(0), attrs);
        cpu.store(self.qmem.at(0), attrs);
        cpu.exec(4);
    }

    /// Submit a request from (possibly remote) `cpu`. Returns `true` when
    /// the disk was idle and the driver was made ready on its own CPU —
    /// the §4.3 protocol, charged faithfully: queue lock, uncached link
    /// stores, and (idle case) the remote ready-queue insertion.
    pub fn submit(&mut self, kernel: &mut Kernel, cpu_id: CpuId, req: DiskRequest) -> bool {
        let was_idle = !self.busy && self.queue.is_empty();
        {
            let cpu = kernel.cpu_mut(cpu_id);
            cpu.with_category(CostCategory::Other, |cpu| {
                self.charge_queue_lock(cpu);
                let attrs = MemAttrs::uncached_shared(self.qmem.base.module());
                cpu.store(self.qmem.at(16), attrs); // request record
                cpu.store(self.qmem.at(24), attrs);
                cpu.store(self.qmem.at(8), attrs); // tail pointer
                cpu.exec(8);
            });
        }
        self.queue.push_back(req);
        if was_idle {
            // Idle disk: additionally make the driver process ready on the
            // *driver's* CPU (a genuinely cross-processor operation).
            kernel.enqueue_ready(self.driver_cpu, self.driver);
            self.busy = true;
        }
        was_idle
    }

    /// The driver takes the next request (runs on the driver CPU).
    pub fn driver_take(&mut self, kernel: &mut Kernel) -> Option<DiskRequest> {
        let req = self.queue.pop_front();
        let cpu = kernel.cpu_mut(self.driver_cpu);
        cpu.with_category(CostCategory::Other, |cpu| {
            self.charge_queue_lock(cpu);
            let attrs = MemAttrs::uncached_shared(self.qmem.base.module());
            if req.is_some() {
                cpu.load(self.qmem.at(16), attrs);
                cpu.load(self.qmem.at(24), attrs);
                cpu.store(self.qmem.at(8), attrs);
            } else {
                cpu.load(self.qmem.at(8), attrs);
            }
            cpu.exec(8);
        });
        if req.is_none() {
            self.busy = false;
        }
        req
    }

    /// Outstanding request count (diagnostics).
    pub fn depth(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hector_sim::MachineConfig;
    use hector_sim::tlb::ASID_KERNEL;

    fn setup() -> (Kernel, Disk) {
        let mut k = Kernel::boot(MachineConfig::hector(4));
        let driver = k.create_process_boot(ASID_KERNEL, 2, 0);
        let disk = Disk::new(&mut k.machine, driver, 2);
        (k, disk)
    }

    #[test]
    fn idle_submit_wakes_driver_on_its_cpu() {
        let (mut k, mut disk) = setup();
        let req = DiskRequest { block: 7, requester: 0, write: false };
        let woke = disk.submit(&mut k, 0, req);
        assert!(woke, "idle disk must wake the driver");
        assert_eq!(k.ready[2].peek(), Some(disk.driver), "driver readied on its own CPU");
        assert!(disk.busy);
    }

    #[test]
    fn busy_submit_only_queues() {
        let (mut k, mut disk) = setup();
        let r1 = DiskRequest { block: 1, requester: 0, write: false };
        let r2 = DiskRequest { block: 2, requester: 1, write: true };
        disk.submit(&mut k, 0, r1);
        let woke = disk.submit(&mut k, 1, r2);
        assert!(!woke, "busy disk: append only");
        assert_eq!(disk.depth(), 2);
        assert_eq!(k.ready[2].len(), 1, "driver readied exactly once");
    }

    #[test]
    fn driver_drains_fifo_and_goes_idle() {
        let (mut k, mut disk) = setup();
        disk.submit(&mut k, 0, DiskRequest { block: 1, requester: 0, write: false });
        disk.submit(&mut k, 1, DiskRequest { block: 2, requester: 1, write: false });
        assert_eq!(disk.driver_take(&mut k).unwrap().block, 1);
        assert_eq!(disk.driver_take(&mut k).unwrap().block, 2);
        assert!(disk.driver_take(&mut k).is_none());
        assert!(!disk.busy);
        // Next submit wakes the driver again.
        assert!(disk.submit(&mut k, 3, DiskRequest { block: 3, requester: 2, write: true }));
    }

    #[test]
    fn submission_from_remote_cpu_is_charged_shared() {
        let (mut k, mut disk) = setup();
        let cpu = k.cpu_mut(0);
        cpu.begin_measure();
        disk.submit(&mut k, 0, DiskRequest { block: 9, requester: 0, write: false });
        let st = k.machine.cpu_mut(0).path_stats().clone();
        assert!(st.shared_accesses >= 5, "disk queue is shared by design");
        assert_eq!(st.lock_acquires, 1);
    }
}
