//! Trap entry/exit sequences.
//!
//! A PPC round trip pays exactly two traps and two returns-from-interrupt
//! (≈1.7 µs each pair on the M88100). The hardware edge itself is charged
//! to the `TrapOverhead` category by the CPU model; the short software
//! prologue/epilogue (building the trap frame, vectoring) belongs to the
//! facility that owns the trap, so callers pass the category it should be
//! charged to.

use hector_sim::cpu::{CostCategory, Cpu};
use hector_sim::sym::{MemAttrs, Region};

/// Words stored into the trap frame on entry (PC, PSR, a few scratch regs
/// the vector code needs before the real handler decides what to save).
pub const TRAP_FRAME_WORDS: u64 = 4;

/// Offset of the trap frame within the kernel stack page. Hot per-call
/// structures are deliberately *not* placed at page-aligned addresses:
/// with 256 sets, every page base maps to the same cache set, and the
/// paper's kernel "organized code and data to minimize the number of
/// cache misses" — this is that organization.
pub const TRAP_FRAME_OFF: u64 = 192;

/// Enter supervisor mode via a trap. `kstack` is the kernel stack that
/// receives the trap frame; prologue work is charged to `cat`.
pub fn enter(cpu: &mut Cpu, kstack: Region, cat: CostCategory) {
    cpu.trap_enter();
    cpu.with_category(cat, |cpu| {
        let attrs = MemAttrs::cached_private(kstack.base.module());
        cpu.exec(4); // vector dispatch: read vector, compute handler address
        cpu.store_words(kstack.at(TRAP_FRAME_OFF), TRAP_FRAME_WORDS, attrs);
    });
}

/// Return from the trap to user mode; epilogue work charged to `cat`.
pub fn exit(cpu: &mut Cpu, kstack: Region, cat: CostCategory) {
    cpu.with_category(cat, |cpu| {
        let attrs = MemAttrs::cached_private(kstack.base.module());
        cpu.load_words(kstack.at(TRAP_FRAME_OFF), TRAP_FRAME_WORDS, attrs);
        cpu.exec(3); // reload PSR/PC, rte setup
    });
    cpu.trap_exit();
}

#[cfg(test)]
mod tests {
    use super::*;
    use hector_sim::tlb::Space;
    use hector_sim::{Machine, MachineConfig};

    #[test]
    fn round_trip_charges_two_edges_and_prologue() {
        let mut m = Machine::new(MachineConfig::hector(1));
        let kstack = m.alloc_on(0, 256, "kstack");
        let cpu = m.cpu_mut(0);
        cpu.begin_measure();
        enter(cpu, kstack, CostCategory::PpcKernel);
        assert_eq!(cpu.mode(), Space::Supervisor);
        exit(cpu, kstack, CostCategory::PpcKernel);
        assert_eq!(cpu.mode(), Space::User);
        let bd = cpu.end_measure();
        assert_eq!(bd.get(CostCategory::TrapOverhead).as_u64(), 28);
        assert!(bd.get(CostCategory::PpcKernel).as_u64() > 0);
    }

    #[test]
    fn warm_trap_frame_is_cheap() {
        let mut m = Machine::new(MachineConfig::hector(1));
        let kstack = m.alloc_on(0, 256, "kstack");
        let cpu = m.cpu_mut(0);
        // Warm-up round.
        enter(cpu, kstack, CostCategory::PpcKernel);
        exit(cpu, kstack, CostCategory::PpcKernel);
        cpu.begin_measure();
        enter(cpu, kstack, CostCategory::PpcKernel);
        exit(cpu, kstack, CostCategory::PpcKernel);
        let warm = cpu.end_measure();
        // Warm path: no cache fills, so PpcKernel is just issue + hit costs.
        assert!(warm.get(CostCategory::PpcKernel).as_u64() < 60, "{warm}");
    }
}
