//! Hurricane's pre-existing message-passing IPC facility.
//!
//! This is the facility the PPC subsystem replaced ("the vast majority of
//! the code is needed to handle exceptions and to integrate the new
//! facility with the pre-existing message passing facility"). It is the
//! textbook multiprocessor port design the paper argues against: a
//! **global port table** and **per-port message queues in shared memory,
//! protected by locks**. A direct translation of a uniprocessor IPC to a
//! multiprocessor — and therefore the natural baseline for the ablation
//! benchmarks.
//!
//! The send/receive/reply round trip is modelled with full (non-hand-off)
//! context switches through the scheduler, message copies through shared
//! buffers, and port locking.

use std::collections::VecDeque;

use hector_sim::cpu::{CostCategory, Cpu};
use hector_sim::sym::{MemAttrs, Region};
use hector_sim::topology::ModuleId;
use hector_sim::Machine;

use crate::process::Pid;

/// Port identifier.
pub type PortId = usize;

/// An in-flight message: 8 words of payload plus the sender for reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Message {
    /// Sending process (reply target).
    pub sender: Pid,
    /// Payload words.
    pub words: [u64; 8],
}

/// One receive port.
#[derive(Clone, Debug)]
pub struct Port {
    /// Owning (server) process.
    pub owner: Pid,
    /// Shared queue memory (uncached — written by every sending CPU).
    mem: Region,
    queue: VecDeque<Message>,
    /// Home module of the port lock.
    pub lock_home: ModuleId,
}

/// The message-passing IPC state.
#[derive(Clone, Debug)]
pub struct MsgIpc {
    /// Global port table memory (shared, uncached: ports come and go under
    /// a global lock in the original design).
    table: Region,
    ports: Vec<Port>,
}

/// Words of processor state saved on a *full* (scheduler) context switch —
/// the general path the paper's hand-off scheduling avoids: the complete
/// user register file plus control registers.
pub const FULL_SWITCH_WORDS: u64 = 34;

impl MsgIpc {
    /// Create the facility; the port table is homed on module 0 like other
    /// boot-time shared kernel structures.
    pub fn new(machine: &mut Machine) -> Self {
        let table = machine.alloc_shared(1024, "port-table");
        MsgIpc { table, ports: Vec::new() }
    }

    /// Create a port owned by `owner`, its queue homed on `home`.
    pub fn create_port(&mut self, machine: &mut Machine, owner: Pid, home: ModuleId) -> PortId {
        let mem = machine.alloc_on(home, 512, "port-queue");
        self.ports.push(Port { owner, mem, queue: VecDeque::new(), lock_home: home });
        self.ports.len() - 1
    }

    /// The port behind `id`.
    pub fn port(&self, id: PortId) -> &Port {
        &self.ports[id]
    }

    /// Charge one uncontended acquire+release of the port lock.
    fn charge_port_lock(&self, cpu: &mut Cpu, port: PortId) {
        let home = self.ports[port].lock_home;
        let attrs = MemAttrs::uncached_shared(home);
        cpu.note_lock_acquire();
        let lock_word = self.ports[port].mem.at(0);
        cpu.load(lock_word, attrs);
        cpu.store(lock_word, attrs);
        cpu.store(lock_word, attrs);
        cpu.exec(4);
    }

    /// Enqueue a message (charged): global table lookup, port lock, copy of
    /// the 8 payload words into the shared queue buffer.
    pub fn send(&mut self, cpu: &mut Cpu, port: PortId, msg: Message) {
        cpu.with_category(CostCategory::Other, |cpu| {
            // Port table lookup: shared, uncached.
            let t = MemAttrs::uncached_shared(self.table.base.module());
            cpu.load(self.table.at((port as u64 * 16) % self.table.len), t);
            cpu.exec(12); // validate rights, bounds
            self.charge_port_lock(cpu, port);
            let p = &self.ports[port];
            let qa = MemAttrs::uncached_shared(p.mem.base.module());
            for i in 0..8 {
                cpu.store(p.mem.at(16 + i * 8), qa);
            }
            cpu.store(p.mem.at(8), qa); // queue tail update
            cpu.exec(10);
        });
        self.ports[port].queue.push_back(msg);
    }

    /// Dequeue the next message (charged symmetrically to `send`).
    pub fn receive(&mut self, cpu: &mut Cpu, port: PortId) -> Option<Message> {
        let msg = self.ports[port].queue.pop_front();
        cpu.with_category(CostCategory::Other, |cpu| {
            self.charge_port_lock(cpu, port);
            let p = &self.ports[port];
            let qa = MemAttrs::uncached_shared(p.mem.base.module());
            if msg.is_some() {
                for i in 0..8 {
                    cpu.load(p.mem.at(16 + i * 8), qa);
                }
                cpu.store(p.mem.at(8), qa); // head update
            } else {
                cpu.load(p.mem.at(8), qa);
            }
            cpu.exec(10);
        });
        msg
    }

    /// Charge the *full* context switch used by the send-blocked →
    /// server-runs → reply-wakes-sender path (through the general
    /// scheduler, unlike PPC hand-off).
    pub fn charge_full_switch(&self, cpu: &mut Cpu, from_pcb: Region, to_pcb: Region) {
        cpu.with_category(CostCategory::Other, |cpu| {
            let fa = MemAttrs::cached_private(from_pcb.base.module());
            let ta = MemAttrs::cached_private(to_pcb.base.module());
            cpu.store_words(from_pcb.base, FULL_SWITCH_WORDS, fa);
            cpu.exec(40); // scheduler: pick next, priority bookkeeping
            cpu.load_words(to_pcb.base, FULL_SWITCH_WORDS, ta);
        });
    }

    /// Number of queued messages on `port` (diagnostics).
    pub fn queued(&self, port: PortId) -> usize {
        self.ports[port].queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hector_sim::MachineConfig;

    fn setup() -> (Machine, MsgIpc) {
        let mut m = Machine::new(MachineConfig::hector(4));
        let ipc = MsgIpc::new(&mut m);
        (m, ipc)
    }

    #[test]
    fn send_receive_roundtrip() {
        let (mut m, mut ipc) = setup();
        let port = ipc.create_port(&mut m, 1, 0);
        let msg = Message { sender: 9, words: [1, 2, 3, 4, 5, 6, 7, 8] };
        let cpu = m.cpu_mut(0);
        ipc.send(cpu, port, msg);
        assert_eq!(ipc.queued(port), 1);
        let got = ipc.receive(cpu, port).unwrap();
        assert_eq!(got, msg);
        assert_eq!(ipc.queued(port), 0);
        assert!(ipc.receive(cpu, port).is_none());
    }

    #[test]
    fn fifo_delivery() {
        let (mut m, mut ipc) = setup();
        let port = ipc.create_port(&mut m, 1, 0);
        let cpu = m.cpu_mut(0);
        for s in 0..3 {
            ipc.send(cpu, port, Message { sender: s, words: [s as u64; 8] });
        }
        for s in 0..3 {
            assert_eq!(ipc.receive(cpu, port).unwrap().sender, s);
        }
    }

    #[test]
    fn message_path_hits_shared_memory_and_locks() {
        // The property the paper indicts: the baseline cannot avoid shared
        // data or locks even on its fast path.
        let (mut m, mut ipc) = setup();
        let port = ipc.create_port(&mut m, 1, 0);
        let cpu = m.cpu_mut(1); // remote sender
        cpu.begin_measure();
        ipc.send(cpu, port, Message { sender: 2, words: [0; 8] });
        let st = cpu.path_stats();
        assert!(st.shared_accesses > 8, "copies + lock + table are shared");
        assert_eq!(st.lock_acquires, 1);
    }

    #[test]
    fn full_switch_costs_more_than_handoff() {
        let (mut m, ipc) = setup();
        let a = m.alloc_on(0, 256, "pcb-a");
        let b = m.alloc_on(0, 256, "pcb-b");
        let cpu = m.cpu_mut(0);
        // Warm both PCBs.
        ipc.charge_full_switch(cpu, a, b);
        cpu.begin_measure();
        ipc.charge_full_switch(cpu, a, b);
        let full = cpu.end_measure().total();
        cpu.begin_measure();
        crate::sched::handoff_save_restore(cpu, a, b, crate::process::Process::SWITCH_STATE_WORDS);
        let handoff = cpu.end_measure().total();
        assert!(full > handoff * 2, "full {full} vs handoff {handoff}");
    }
}
