//! Address spaces and page tables.
//!
//! The simulator uses a unified symbolic address space: a virtual page is
//! identified by the page number of the symbolic physical region mapped at
//! it (identity mapping). What the models need is only *which* pages a
//! space can reach and *when translations change* — mapping a worker stack
//! into the server's space inserts a PTE and a TLB entry; unmapping it on
//! call return invalidates both.
//!
//! Hurricane keeps the processor-specific portions of page tables local to
//! each processor; PTE writes on the PPC path are therefore charged as
//! CPU-local cached stores, preserving the no-remote-accesses property.

use std::collections::HashMap;

use hector_sim::cpu::Cpu;
use hector_sim::sym::{MemAttrs, Region};
use hector_sim::tlb::{Asid, Space};

/// A mapping entry: which frame backs a page, and writability.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mapping {
    /// Backing frame.
    pub frame: Region,
    /// Whether stores are permitted.
    pub writable: bool,
}

/// One protection domain.
///
/// Hurricane keeps a *processor-local portion* of every address space's
/// page table (`pt_local`, one region per CPU): PTE traffic on the PPC
/// fastpath — mapping and unmapping the worker-stack window — stays in
/// memory local to the calling processor.
#[derive(Clone, Debug)]
pub struct AddressSpace {
    /// Address-space identifier (0 = the kernel/supervisor space).
    pub asid: Asid,
    /// Human-readable name for diagnostics ("bob", "client-3", ...).
    pub name: String,
    pages: HashMap<u64, Mapping>,
    /// Symbolic memory of the per-processor page-table portions, used to
    /// charge the PTE accesses performed during map/unmap.
    pt_local: Vec<Region>,
}

impl AddressSpace {
    /// Create a space. `pt_local` holds one symbolic region per processor,
    /// charged for that processor's PTE reads/writes.
    pub fn new(asid: Asid, name: impl Into<String>, pt_local: Vec<Region>) -> Self {
        assert!(!pt_local.is_empty());
        AddressSpace { asid, name: name.into(), pages: HashMap::new(), pt_local }
    }

    fn pt_mem(&self, cpu: &Cpu) -> Region {
        self.pt_local[cpu.id.min(self.pt_local.len() - 1)]
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    /// Is `page` mapped?
    pub fn is_mapped(&self, page: u64) -> bool {
        self.pages.contains_key(&page)
    }

    /// The mapping for `page`, if any.
    pub fn mapping(&self, page: u64) -> Option<Mapping> {
        self.pages.get(&page).copied()
    }

    /// Install a mapping without charging (boot-time setup).
    pub fn map_boot(&mut self, frame: Region, writable: bool) {
        for p in pages_of(frame) {
            self.pages.insert(p, Mapping { frame, writable });
        }
    }

    /// Map `frame` (charged): writes the PTE(s) in the processor-local page
    /// table and installs the translation in the CPU's TLB. This is the
    /// "map the CD's physical memory into the server's address space to be
    /// used as the worker's stack" step of the PPC call path; the caller
    /// wraps it in the `TlbSetup` category.
    pub fn map(&mut self, cpu: &mut Cpu, frame: Region, writable: bool, space: Space) {
        let pt = self.pt_mem(cpu);
        let attrs = MemAttrs::cached_private(pt.base.module());
        for (i, p) in pages_of(frame).enumerate() {
            // Locate and write the PTE: one load (directory walk, amortized)
            // and one store per page.
            cpu.load(pt.at((i as u64 * 8) % pt.len), attrs);
            cpu.store(pt.at((i as u64 * 8) % pt.len), attrs);
            cpu.exec(3); // address arithmetic + permission bits
            cpu.tlb_insert(space, p);
            self.pages.insert(p, Mapping { frame, writable });
        }
    }

    /// Remove the mapping of `frame` (charged): clears the PTE(s) and
    /// invalidates the translations on this CPU.
    pub fn unmap(&mut self, cpu: &mut Cpu, frame: Region, space: Space) {
        let pt = self.pt_mem(cpu);
        let attrs = MemAttrs::cached_private(pt.base.module());
        for (i, p) in pages_of(frame).enumerate() {
            cpu.store(pt.at((i as u64 * 8) % pt.len), attrs);
            cpu.exec(2);
            cpu.tlb_invalidate(space, p);
            self.pages.remove(&p);
        }
    }

    /// Can `page` be written in this space?
    pub fn check_write(&self, page: u64) -> bool {
        self.pages.get(&page).is_some_and(|m| m.writable)
    }
}

/// The page numbers a region spans.
pub fn pages_of(frame: Region) -> impl Iterator<Item = u64> {
    let first = frame.base.page();
    let last = frame.base.offset(frame.len.max(1) - 1).page();
    first..=last
}

#[cfg(test)]
mod tests {
    use super::*;
    use hector_sim::{Machine, MachineConfig};

    fn setup() -> (Machine, AddressSpace) {
        let mut m = Machine::new(MachineConfig::hector(2));
        let pts = (0..2).map(|c| m.alloc_on(c, 256, "pt")).collect();
        (m, AddressSpace::new(1, "test", pts))
    }

    #[test]
    fn map_then_unmap_roundtrip() {
        let (mut m, mut aspace) = setup();
        let frame = m.alloc_page_on(0, "stack");
        let page = frame.base.page();
        assert!(!aspace.is_mapped(page));
        let cpu = m.cpu_mut(0);
        aspace.map(cpu, frame, true, Space::User);
        assert!(aspace.is_mapped(page));
        assert!(aspace.check_write(page));
        assert!(cpu.tlb().is_resident(Space::User, page), "map preloads the TLB");
        aspace.unmap(cpu, frame, Space::User);
        assert!(!aspace.is_mapped(page));
        assert!(!cpu.tlb().is_resident(Space::User, page));
    }

    #[test]
    fn map_charges_cycles() {
        let (mut m, mut aspace) = setup();
        let frame = m.alloc_page_on(0, "stack");
        let cpu = m.cpu_mut(0);
        cpu.begin_measure();
        aspace.map(cpu, frame, true, Space::User);
        let bd = cpu.end_measure();
        assert!(bd.total().as_u64() > 0);
    }

    #[test]
    fn read_only_mapping_rejects_writes() {
        let (mut m, mut aspace) = setup();
        let frame = m.alloc_page_on(0, "code");
        aspace.map(m.cpu_mut(0), frame, false, Space::User);
        assert!(!aspace.check_write(frame.base.page()));
    }

    #[test]
    fn multi_page_region_maps_every_page() {
        let (mut m, mut aspace) = setup();
        let a = m.alloc_page_on(0, "p1");
        let b = m.alloc_page_on(0, "p2");
        let big = Region { base: a.base, len: a.len + b.len };
        aspace.map(m.cpu_mut(0), big, true, Space::User);
        assert_eq!(aspace.mapped_pages(), 2);
    }

    #[test]
    fn boot_mapping_is_uncharged_setup() {
        let (mut m, mut aspace) = setup();
        let frame = m.alloc_page_on(0, "text");
        let before = m.cpu(0).clock();
        aspace.map_boot(frame, false);
        assert_eq!(m.cpu(0).clock(), before);
        assert!(aspace.is_mapped(frame.base.page()));
    }
}
