//! Property-based tests of the OS substrate.

use proptest::prelude::*;

use hector_sim::tlb::Space;
use hector_sim::{Machine, MachineConfig};
use hurricane_os::addrspace::{pages_of, AddressSpace};
use hurricane_os::sched::ReadyQueue;

proptest! {
    #[test]
    fn pages_of_covers_exactly_the_region(off in 0u64..1 << 20, len in 1u64..32768) {
        let base = hector_sim::sym::PAddr::compose(0, off);
        let r = hector_sim::sym::Region { base, len };
        let pages: Vec<u64> = pages_of(r).collect();
        // Contiguous, non-empty, and covering first & last byte.
        prop_assert!(!pages.is_empty());
        prop_assert_eq!(*pages.first().unwrap(), base.page());
        prop_assert_eq!(*pages.last().unwrap(), base.offset(len - 1).page());
        for w in pages.windows(2) {
            prop_assert_eq!(w[1], w[0] + 1);
        }
    }

    #[test]
    fn map_unmap_sequences_leave_consistent_state(
        ops in prop::collection::vec(any::<bool>(), 1..40),
    ) {
        let mut m = Machine::new(MachineConfig::hector(1));
        let pts = vec![m.alloc_on(0, 256, "pt")];
        let mut aspace = AddressSpace::new(5, "prop", pts);
        let frames: Vec<_> = (0..4).map(|_| m.alloc_page_on(0, "f")).collect();
        let mut mapped = [false; 4];
        for (i, do_map) in ops.iter().enumerate() {
            let which = i % 4;
            let cpu = m.cpu_mut(0);
            if *do_map && !mapped[which] {
                aspace.map(cpu, frames[which], true, Space::User);
                mapped[which] = true;
            } else if !*do_map && mapped[which] {
                aspace.unmap(cpu, frames[which], Space::User);
                mapped[which] = false;
            }
            for (f, m_) in frames.iter().zip(mapped.iter()) {
                prop_assert_eq!(aspace.is_mapped(f.base.page()), *m_);
            }
        }
        prop_assert_eq!(aspace.mapped_pages(), mapped.iter().filter(|x| **x).count());
    }

    #[test]
    fn ready_queue_is_exactly_fifo(pids in prop::collection::vec(0usize..1000, 0..60)) {
        let mut m = Machine::new(MachineConfig::hector(1));
        let mem = m.alloc_on(0, 64, "rq");
        let mut rq = ReadyQueue::new(mem);
        let cpu = m.cpu_mut(0);
        for p in &pids {
            rq.enqueue(cpu, *p);
        }
        let mut out = Vec::new();
        while let Some(p) = rq.dequeue(cpu) {
            out.push(p);
        }
        prop_assert_eq!(out, pids);
        prop_assert!(rq.is_empty());
    }

    #[test]
    fn handoff_costs_are_independent_of_pid_values(a in 0u64..100, b in 0u64..100) {
        // Switch cost depends on the PCB word count, never on which
        // processes are involved.
        let mut m = Machine::new(MachineConfig::hector(1));
        let p1 = m.alloc_on(0, 256, "p1");
        let p2 = m.alloc_on(0, 256, "p2");
        let cpu = m.cpu_mut(0);
        // warm
        hurricane_os::sched::handoff_save_restore(cpu, p1, p2, 10);
        let t1 = cpu.clock();
        hurricane_os::sched::handoff_save_restore(cpu, p1, p2, 10);
        let c1 = cpu.clock() - t1;
        let t2 = cpu.clock();
        hurricane_os::sched::handoff_save_restore(cpu, p1, p2, 10);
        let c2 = cpu.clock() - t2;
        // The fractional pipeline-stall accumulator may roll over at
        // different points, so allow one cycle of jitter.
        let diff = c1.as_u64().abs_diff(c2.as_u64());
        prop_assert!(diff <= 1, "switch cost varies: {} vs {} ({},{})", c1, c2, a, b);
    }
}
