//! Integration: the pre-existing message-passing facility driving real
//! processes through the scheduler — the world the PPC facility replaced.

use hector_sim::MachineConfig;
use hurricane_os::msg::{Message, MsgIpc};
use hurricane_os::process::ProcState;
use hurricane_os::Kernel;

#[test]
fn request_reply_flow_through_ports_and_scheduler() {
    let mut k = Kernel::boot(MachineConfig::hector(2));
    let server_as = k.create_space("server");
    let client_as = k.create_space("client");
    let server = k.create_process_boot(server_as, 0, 1);
    let client = k.create_process_boot(client_as, 0, 2);
    k.procs[client].state = ProcState::Running;

    let mut ipc = MsgIpc::new(&mut k.machine);
    let req_port = ipc.create_port(&mut k.machine, server, 0);
    let reply_port = ipc.create_port(&mut k.machine, client, 0);

    // Client sends and blocks; the kernel switches to the server.
    let cpu = k.machine.cpu_mut(0);
    ipc.send(cpu, req_port, Message { sender: client, words: [3, 4, 0, 0, 0, 0, 0, 0] });
    k.procs[client].state = ProcState::Blocked;
    k.handoff_switch(0, client, server);
    assert_eq!(k.procs[server].state, ProcState::Running);

    // Server handles and replies.
    let cpu = k.machine.cpu_mut(0);
    let req = ipc.receive(cpu, req_port).expect("request queued");
    let sum = req.words[0] + req.words[1];
    ipc.send(cpu, reply_port, Message { sender: server, words: [sum; 8] });
    k.handoff_switch(0, server, client);

    let cpu = k.machine.cpu_mut(0);
    let reply = ipc.receive(cpu, reply_port).expect("reply queued");
    assert_eq!(reply.words[0], 7);
    assert_eq!(k.procs[client].state, ProcState::Running);
}

#[test]
fn many_outstanding_messages_preserve_order_and_pairing() {
    let mut k = Kernel::boot(MachineConfig::hector(4));
    let mut ipc = MsgIpc::new(&mut k.machine);
    let port = ipc.create_port(&mut k.machine, 0, 2);
    // Senders on several CPUs, receiver on the port's home CPU.
    let mut sent = Vec::new();
    for round in 0..5u64 {
        for cpu in 0..4usize {
            let cpu_ref = k.machine.cpu_mut(cpu);
            let words = [round * 10 + cpu as u64; 8];
            ipc.send(cpu_ref, port, Message { sender: cpu, words });
            sent.push(words[0]);
        }
    }
    let cpu = k.machine.cpu_mut(2);
    let mut got = Vec::new();
    while let Some(m) = ipc.receive(cpu, port) {
        got.push(m.words[0]);
    }
    assert_eq!(got, sent, "FIFO across senders in arrival order");
}

#[test]
fn message_path_costs_grow_with_distance() {
    // A remote sender pays NUMA distance on every shared-queue access —
    // the structural cost PPC avoids by never leaving the local CPU.
    let mut k = Kernel::boot(MachineConfig::hector(16));
    let mut ipc = MsgIpc::new(&mut k.machine);
    let port = ipc.create_port(&mut k.machine, 0, 0);
    let msg = Message { sender: 0, words: [1; 8] };

    // Warm both senders.
    for _ in 0..2 {
        let c = k.machine.cpu_mut(1);
        ipc.send(c, port, msg);
        let c = k.machine.cpu_mut(8);
        ipc.send(c, port, msg);
    }
    let near = {
        let c = k.machine.cpu_mut(1);
        let t = c.clock();
        ipc.send(c, port, msg);
        c.clock() - t
    };
    let far = {
        let c = k.machine.cpu_mut(8);
        let t = c.clock();
        ipc.send(c, port, msg);
        c.clock() - t
    };
    assert!(far > near, "far send {far} must exceed near send {near}");
}
