//! LRPC-style IPC on the Hector substrate.
//!
//! Bershad's Lightweight RPC uses the same protected-procedure-call model
//! as the paper, but its resources are not processor-local: the *binding
//! object* is looked up in a shared table, and the per-binding **A-stack
//! queue is a shared list protected by a lock** that every call pops on
//! entry and pushes on return. On the Firefly (slow processors, cheap
//! shared memory, update-based coherence) this was nearly free; on a
//! NUMA machine with expensive misses it serializes and saturates.
//!
//! The implementation mirrors `ppc-core`'s call path step by step and
//! differs exactly where LRPC differs: binding lookup in shared memory,
//! A-stack list under a lock, linkage record in the shared A-stack.

use hector_sim::cpu::{CostCategory, Cpu, CpuId};
use hector_sim::sym::{MemAttrs, Region};
use hector_sim::time::Cycles;
use hector_sim::topology::ModuleId;
use hector_sim::Machine;
use hurricane_os::process::Process;
use hurricane_os::trap;

use crate::DesRecipe;

/// Number of shared-memory accesses to pop/push the A-stack free list and
/// write the linkage record (return PC/SP, binding id).
pub const ASTACK_CS_ACCESSES: u64 = 9;

/// An LRPC binding: the shared structures one client-server pair uses.
#[derive(Clone, Debug)]
pub struct LrpcBinding {
    /// Global binding-table entry (shared, uncached).
    pub binding: Region,
    /// A-stack free-list head + linkage records (shared, uncached,
    /// lock-protected).
    pub astack_list: Region,
    /// Home module of the shared structures.
    pub home: ModuleId,
}

/// A minimal LRPC facility for cost measurement.
#[derive(Clone, Debug)]
pub struct Lrpc {
    binding: LrpcBinding,
    /// Kernel stack for trap frames (per measurement CPU; reallocated on
    /// demand in `round_trip`).
    kstacks: Vec<Region>,
    /// Client user-stack save areas, one per CPU.
    ustacks: Vec<Region>,
    /// Server A-stack pages (contents; the *list* is what's shared).
    server_code: Region,
}

impl Lrpc {
    /// Build the facility with its shared structures homed on `home`.
    pub fn new(machine: &mut Machine, home: ModuleId) -> Self {
        let n = machine.n_cpus();
        let binding = machine.alloc_on(home, 128, "lrpc-binding");
        let astack_list = machine.alloc_on(home, 256, "lrpc-astack-list");
        let kstacks = (0..n).map(|c| machine.alloc_page_on(c, "lrpc-kstack")).collect();
        let ustacks = (0..n).map(|c| machine.alloc_page_on(c, "lrpc-ustack")).collect();
        let server_code = machine.alloc_on(home, 256, "lrpc-server-code");
        Lrpc { binding: LrpcBinding { binding, astack_list, home }, kstacks, ustacks, server_code }
    }

    /// The binding's shared structures.
    pub fn binding(&self) -> &LrpcBinding {
        &self.binding
    }

    /// Charge the A-stack critical-section *body* (list pop or push plus
    /// the linkage record) — shared uncached accesses. The lock operation
    /// itself is charged by the caller / the DES.
    pub fn charge_astack_cs(&self, cpu: &mut Cpu, entry: bool) {
        let attrs = MemAttrs::uncached_shared(self.binding.home);
        cpu.with_category(CostCategory::CdManip, |cpu| {
            let n = if entry { ASTACK_CS_ACCESSES } else { ASTACK_CS_ACCESSES - 3 };
            for i in 0..n {
                if i % 2 == 0 {
                    cpu.load(self.binding.astack_list.at(i * 8 % 256), attrs);
                } else {
                    cpu.store(self.binding.astack_list.at(i * 8 % 256), attrs);
                }
            }
            cpu.exec(6);
        });
    }

    /// Charge an uncontended lock acquire+release around a CS on `cpu`.
    fn charge_lock(&self, cpu: &mut Cpu) {
        let attrs = MemAttrs::uncached_shared(self.binding.home);
        cpu.note_lock_acquire();
        cpu.load(self.binding.astack_list.at(248), attrs);
        cpu.store(self.binding.astack_list.at(248), attrs);
        cpu.store(self.binding.astack_list.at(248), attrs);
        cpu.exec(4);
    }

    /// One charged LRPC round trip on `cpu_id` (uncontended locks). The
    /// structure parallels the PPC fastpath; the differences are the
    /// shared binding lookup and the locked A-stack list.
    pub fn round_trip(&self, machine: &mut Machine, cpu_id: CpuId) -> Cycles {
        let kstack = self.kstacks[cpu_id];
        let ustack = self.ustacks[cpu_id];
        let shared = MemAttrs::uncached_shared(self.binding.home);
        let cpu = machine.cpu_mut(cpu_id);
        let start = cpu.clock();

        // Client stub: user save + trap (same as PPC).
        cpu.with_category(CostCategory::UserSaveRestore, |c| {
            let attrs = MemAttrs::cached_private(ustack.base.module());
            c.exec(6);
            c.store_words(ustack.at(4096 - 192), Process::USER_SAVE_WORDS, attrs);
        });
        trap::enter(cpu, kstack, CostCategory::PpcKernel);

        // Binding lookup: SHARED table (vs. PPC's CPU-local array).
        cpu.with_category(CostCategory::PpcKernel, |c| {
            c.load(self.binding.binding.at(0), shared);
            c.load(self.binding.binding.at(16), shared);
            c.exec(10);
        });

        // A-stack allocation: lock + shared list pop + linkage record.
        self.charge_lock(cpu);
        self.charge_astack_cs(cpu, true);

        // Domain crossing: same TLB/context mechanics as a user-level PPC.
        cpu.with_category(CostCategory::TlbSetup, |c| {
            c.exec(6);
        });
        cpu.switch_user_as(900 + self.binding.home as u32);
        cpu.with_category(CostCategory::KernelSaveRestore, |c| {
            let attrs = MemAttrs::cached_private(kstack.base.module());
            c.store_words(kstack.at(256), Process::SWITCH_STATE_WORDS, attrs);
            c.load_words(kstack.at(512), Process::SWITCH_STATE_WORDS, attrs);
        });
        trap::exit(cpu, kstack, CostCategory::PpcKernel);

        // Null server body.
        cpu.with_category(CostCategory::ServerTime, |c| {
            c.fetch_code(self.server_code);
            c.exec(8);
        });

        // Return: trap, A-stack push under the lock, switch back.
        trap::enter(cpu, kstack, CostCategory::PpcKernel);
        self.charge_lock(cpu);
        self.charge_astack_cs(cpu, false);
        cpu.with_category(CostCategory::KernelSaveRestore, |c| {
            let attrs = MemAttrs::cached_private(kstack.base.module());
            c.store_words(kstack.at(512), Process::SWITCH_STATE_WORDS, attrs);
            c.load_words(kstack.at(256), Process::SWITCH_STATE_WORDS, attrs);
        });
        cpu.switch_user_as(800 + cpu_id as u32);
        trap::exit(cpu, kstack, CostCategory::PpcKernel);
        cpu.with_category(CostCategory::UserSaveRestore, |c| {
            let attrs = MemAttrs::cached_private(ustack.base.module());
            c.load_words(ustack.at(4096 - 192), Process::USER_SAVE_WORDS, attrs);
            c.exec(2);
        });

        machine.cpu_mut(cpu_id).clock() - start
    }

    /// DES recipe for one client on `cpu_id`: the A-stack list lock
    /// serializes both the entry and return CS. Returns the recipe; the
    /// caller supplies the `LockId` it created for this binding.
    pub fn des_recipe(
        &self,
        machine: &mut Machine,
        cpu_id: CpuId,
        lock: hector_sim::des::LockId,
    ) -> DesRecipe {
        // Measure the warm round trip and the CS bodies on this CPU.
        for _ in 0..2 {
            self.round_trip(machine, cpu_id);
        }
        let total = self.round_trip(machine, cpu_id);
        let cpu = machine.cpu_mut(cpu_id);
        let t0 = cpu.clock();
        self.charge_astack_cs(cpu, true);
        let cs_in = cpu.clock() - t0;
        let t1 = cpu.clock();
        self.charge_astack_cs(cpu, false);
        let cs_out = cpu.clock() - t1;
        // Lock word costs are replayed by the DES itself; subtract the CS
        // bodies (counted inside `total`) from the local share.
        let lock_cost = {
            let t = cpu.clock();
            self.charge_lock(cpu);
            self.charge_lock(cpu);
            cpu.clock() - t
        };
        let local = total.saturating_sub(cs_in + cs_out + lock_cost);
        DesRecipe {
            segments: vec![
                hector_sim::des::Segment::Busy(local / 2),
                hector_sim::des::Segment::Acquire(lock),
                hector_sim::des::Segment::Busy(cs_in),
                hector_sim::des::Segment::Release(lock),
                hector_sim::des::Segment::Busy(local - local / 2),
                hector_sim::des::Segment::Acquire(lock),
                hector_sim::des::Segment::Busy(cs_out),
                hector_sim::des::Segment::Release(lock),
            ],
            local,
            serialized: cs_in + cs_out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hector_sim::MachineConfig;

    #[test]
    fn lrpc_latency_same_ballpark_as_ppc_but_with_shared_traffic() {
        let mut m = Machine::new(MachineConfig::hector(4));
        let lrpc = Lrpc::new(&mut m, 0);
        for _ in 0..3 {
            lrpc.round_trip(&mut m, 0);
        }
        let cpu = m.cpu_mut(0);
        cpu.begin_measure();
        let t = lrpc.round_trip(&mut m, 0);
        let st = m.cpu_mut(0).path_stats().clone();
        // Uncontended and local, LRPC is competitive...
        assert!((15.0..60.0).contains(&t.as_us()), "{t}");
        // ...but unlike PPC it touches shared data and takes locks.
        assert!(st.shared_accesses > 10, "binding + A-stack list are shared");
        assert_eq!(st.lock_acquires, 2, "entry and return each lock");
    }

    #[test]
    fn remote_cpu_pays_more() {
        let mut m = Machine::new(MachineConfig::hector(16));
        let lrpc = Lrpc::new(&mut m, 0);
        for _ in 0..3 {
            lrpc.round_trip(&mut m, 0);
            lrpc.round_trip(&mut m, 8);
        }
        let local = lrpc.round_trip(&mut m, 0);
        let remote = lrpc.round_trip(&mut m, 8);
        assert!(remote > local, "NUMA distance must show: {remote} vs {local}");
    }

    #[test]
    fn des_recipe_is_sane() {
        let mut m = Machine::new(MachineConfig::hector(4));
        let lrpc = Lrpc::new(&mut m, 0);
        let r = lrpc.des_recipe(&mut m, 1, 0);
        assert_eq!(r.segments.len(), 8);
        assert!(r.serialized > Cycles::ZERO);
        assert!(r.local > r.serialized, "most of the call is still local work");
    }
}
