//! # ipc-baselines — the designs the paper argues against
//!
//! Three comparison IPC implementations on the same Hector/Hurricane
//! substrate, used by the ablation benchmarks:
//!
//! * [`lrpc`] — an LRPC-style facility (Bershad et al., SOSP'89): the same
//!   PPC model, but bindings and A-stack lists are **global shared
//!   structures protected by locks**, exactly the difference the paper
//!   calls out: "The key difference is that not all resources required by
//!   an LRPC operation are exclusively accessed by a single processor."
//! * [`locked_ppc`] — an ablation of the paper's own design: identical
//!   fastpath, except the CD/worker pools are machine-global behind one
//!   lock. Isolates the cost of *just* the locking decision.
//! * [`msg_rpc`] — RPC over Hurricane's pre-existing message-passing
//!   facility (ports, shared queues, full scheduler switches): the
//!   "direct translation of a uniprocessor IPC facility" baseline.
//!
//! Each baseline provides (a) a charged single-CPU `round_trip` for
//! latency comparison, and (b) a segment decomposition for the
//! discrete-event engine so the throughput ablation can replay it under
//! contention.

pub mod locked_ppc;
pub mod lrpc;
pub mod msg_rpc;

use hector_sim::des::{LockId, Segment};
use hector_sim::time::Cycles;

/// A baseline's workload shape for the DES: per-iteration segments with
/// `Acquire`/`Release` already placed around its serialized section(s).
#[derive(Clone, Debug)]
pub struct DesRecipe {
    /// The per-iteration segment sequence.
    pub segments: Vec<Segment>,
    /// Purely-local cycles per iteration (diagnostics).
    pub local: Cycles,
    /// Cycles inside critical sections per iteration (diagnostics).
    pub serialized: Cycles,
}

impl DesRecipe {
    /// Build a recipe `local-work, [acquire, cs, release]` — the common
    /// one-lock shape.
    pub fn one_lock(local: Cycles, cs: Cycles, lock: LockId) -> Self {
        DesRecipe {
            segments: vec![
                Segment::Busy(local),
                Segment::Acquire(lock),
                Segment::Busy(cs),
                Segment::Release(lock),
            ],
            local,
            serialized: cs,
        }
    }

    /// A lock-free recipe (pure local work).
    pub fn lock_free(local: Cycles) -> Self {
        DesRecipe { segments: vec![Segment::Busy(local)], local, serialized: Cycles::ZERO }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recipe_shapes() {
        let r = DesRecipe::one_lock(Cycles(100), Cycles(10), 0);
        assert_eq!(r.segments.len(), 4);
        assert_eq!(r.serialized, Cycles(10));
        let f = DesRecipe::lock_free(Cycles(50));
        assert_eq!(f.segments.len(), 1);
        assert!(f.serialized.is_zero());
    }
}
