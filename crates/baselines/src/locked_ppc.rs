//! Ablation: the paper's PPC design with **global locked pools**.
//!
//! Identical fastpath work to `ppc-core`, except the call descriptors and
//! worker pool live in one machine-wide pool protected by a single lock.
//! Everything else — per-register arguments, hand-off dispatch, stack
//! recycling — is unchanged. Comparing this against the real per-processor
//! design isolates the contribution of the *no-shared-data / no-locks*
//! decision, which the paper's Figure 3 (single file) shows saturating at
//! four processors even for tiny critical sections.

use hector_sim::cpu::{CostCategory, Cpu, CpuId};
use hector_sim::des::LockId;
use hector_sim::sym::{MemAttrs, Region};
use hector_sim::time::Cycles;
use hector_sim::topology::ModuleId;
use hector_sim::Machine;

use crate::DesRecipe;
use ppc_core::microbench::{self, Condition};

/// Shared-memory accesses inside the global pool critical section
/// (CD free-list pop/push, worker pool pop/push, return-info record).
pub const POOL_CS_ACCESSES: u64 = 6;

/// The locked-pool ablation model.
#[derive(Clone, Debug)]
pub struct LockedPpc {
    /// The global pool structure (shared, uncached).
    pool: Region,
    home: ModuleId,
    /// The measured per-processor-PPC warm round trip this ablation
    /// replaces pool operations inside of.
    base_total: Cycles,
    /// The CD-manipulation share of the warm round trip (the work that
    /// moves inside the lock).
    base_cd: Cycles,
}

impl LockedPpc {
    /// Build the model with the global pool homed on `home`. The baseline
    /// PPC costs are measured with the `ppc-core` microbenchmark.
    pub fn new(machine: &mut Machine, home: ModuleId) -> Self {
        let pool = machine.alloc_on(home, 512, "global-cd-pool");
        let bd = microbench::measure(Condition {
            kernel_server: false,
            hold_cd: false,
            flushed: false,
        });
        LockedPpc {
            pool,
            home,
            base_total: bd.total(),
            base_cd: bd.get(hector_sim::cpu::CostCategory::CdManip),
        }
    }

    /// Charge the pool critical-section body on `cpu`: the same logical
    /// work as PPC's CD manipulation, but against shared uncached memory.
    pub fn charge_pool_cs(&self, cpu: &mut Cpu) {
        let attrs = MemAttrs::uncached_shared(self.home);
        cpu.with_category(CostCategory::CdManip, |cpu| {
            for i in 0..POOL_CS_ACCESSES {
                if i % 2 == 0 {
                    cpu.load(self.pool.at(i * 8 % 512), attrs);
                } else {
                    cpu.store(self.pool.at(i * 8 % 512), attrs);
                }
            }
            cpu.exec(6);
        });
    }

    /// One charged round trip on `cpu_id` with uncontended locking.
    pub fn round_trip(&self, machine: &mut Machine, cpu_id: CpuId) -> Cycles {
        let cpu = machine.cpu_mut(cpu_id);
        let start = cpu.clock();
        // Everything except CD manipulation is unchanged from PPC.
        cpu.advance(self.base_total.saturating_sub(self.base_cd));
        // Lock + shared pool ops.
        let attrs = MemAttrs::uncached_shared(self.home);
        cpu.note_lock_acquire();
        cpu.load(self.pool.at(504), attrs);
        cpu.store(self.pool.at(504), attrs);
        self.charge_pool_cs(cpu);
        cpu.store(self.pool.at(504), attrs);
        cpu.clock() - start
    }

    /// DES recipe: PPC-local work plus one locked pool section per call.
    pub fn des_recipe(&self, machine: &mut Machine, cpu_id: CpuId, lock: LockId) -> DesRecipe {
        let cpu = machine.cpu_mut(cpu_id);
        let t0 = cpu.clock();
        self.charge_pool_cs(cpu);
        let cs = cpu.clock() - t0;
        let local = self.base_total.saturating_sub(self.base_cd);
        DesRecipe::one_lock(local, cs, lock)
    }

    /// The warm per-processor-PPC round trip this model is derived from.
    pub fn base_total(&self) -> Cycles {
        self.base_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hector_sim::MachineConfig;

    #[test]
    fn uncontended_latency_is_close_to_ppc() {
        let mut m = Machine::new(MachineConfig::hector(4));
        let lp = LockedPpc::new(&mut m, 0);
        let t = lp.round_trip(&mut m, 0);
        let base = lp.base_total();
        // The locked variant costs a little more (uncached pool + lock)
        // but stays within ~40% uncontended — the paper's point is that
        // latency is NOT where locking hurts.
        assert!(t >= base.saturating_sub(Cycles(20)), "{t} vs {base}");
        assert!(t.as_u64() < base.as_u64() * 14 / 10, "{t} vs {base}");
    }

    #[test]
    fn recipe_serializes_only_pool_ops() {
        let mut m = Machine::new(MachineConfig::hector(4));
        let lp = LockedPpc::new(&mut m, 0);
        let r = lp.des_recipe(&mut m, 2, 0);
        assert!(r.serialized > Cycles::ZERO);
        assert!(
            r.serialized.as_u64() * 3 < r.local.as_u64(),
            "CS is a small fraction: {} vs {}",
            r.serialized,
            r.local
        );
    }
}
