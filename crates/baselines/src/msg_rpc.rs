//! RPC over Hurricane's pre-existing message-passing facility.
//!
//! A round trip is send → (full scheduler switch) → server receive →
//! handler → reply send → (full switch) → client receive. Every leg moves
//! the 8 payload words through shared uncached queue buffers under port
//! locks — the "direct translation of the uniprocessor IPC facility"
//! whose costs §1 of the paper enumerates: shared data, cache
//! invalidations, locks on the critical path.

use hector_sim::cpu::{CpuId};
use hector_sim::des::LockId;
use hector_sim::sym::Region;
use hector_sim::time::Cycles;
use hector_sim::topology::ModuleId;
use hurricane_os::msg::{Message, MsgIpc, PortId};
use hurricane_os::Kernel;

use crate::DesRecipe;

/// A client/server pair over message-passing IPC.
pub struct MsgRpc {
    ipc: MsgIpc,
    /// Server request port.
    pub req_port: PortId,
    /// Client reply port.
    pub reply_port: PortId,
    client_pcb: Region,
    server_pcb: Region,
}

impl MsgRpc {
    /// Build the pair; the server (and its request port) live on `home`.
    pub fn new(kernel: &mut Kernel, home: ModuleId) -> Self {
        let mut ipc = MsgIpc::new(&mut kernel.machine);
        let req_port = ipc.create_port(&mut kernel.machine, 0, home);
        let reply_port = ipc.create_port(&mut kernel.machine, 1, home);
        let client_pcb = kernel.machine.alloc_on(0, 256, "msg-client-pcb");
        let server_pcb = kernel.machine.alloc_on(home, 256, "msg-server-pcb");
        MsgRpc { ipc, req_port, reply_port, client_pcb, server_pcb }
    }

    /// One charged round trip driven from `cpu_id`.
    pub fn round_trip(&mut self, kernel: &mut Kernel, cpu_id: CpuId) -> Cycles {
        let start = kernel.machine.cpu(cpu_id).clock();
        let msg = Message { sender: 0, words: [7; 8] };

        // Client: trap, send, block; scheduler switches to the server.
        let kstack = kernel.kstacks[cpu_id];
        let cpu = kernel.machine.cpu_mut(cpu_id);
        hurricane_os::trap::enter(cpu, kstack, hector_sim::cpu::CostCategory::Other);
        self.ipc.send(cpu, self.req_port, msg);
        self.ipc.charge_full_switch(cpu, self.client_pcb, self.server_pcb);

        // Server: receive, run a null handler, reply.
        let cpu = kernel.machine.cpu_mut(cpu_id);
        let got = self.ipc.receive(cpu, self.req_port).expect("request queued");
        cpu.with_category(hector_sim::cpu::CostCategory::ServerTime, |c| c.exec(8));
        self.ipc.send(cpu, self.reply_port, Message { sender: 1, words: got.words });
        self.ipc.charge_full_switch(cpu, self.server_pcb, self.client_pcb);

        // Client: receive the reply, return to user mode.
        let cpu = kernel.machine.cpu_mut(cpu_id);
        self.ipc.receive(cpu, self.reply_port).expect("reply queued");
        hurricane_os::trap::exit(cpu, kstack, hector_sim::cpu::CostCategory::Other);

        kernel.machine.cpu(cpu_id).clock() - start
    }

    /// DES recipe: the port queues serialize each send/receive pair.
    pub fn des_recipe(&mut self, kernel: &mut Kernel, cpu_id: CpuId, lock: LockId) -> DesRecipe {
        for _ in 0..2 {
            self.round_trip(kernel, cpu_id);
        }
        let total = self.round_trip(kernel, cpu_id);
        // The serialized share: queue manipulation on the shared port
        // (send + receive on the request port; the reply port is per
        // client and uncontended). Measure one send+receive pair.
        let cpu = kernel.machine.cpu_mut(cpu_id);
        let t0 = cpu.clock();
        self.ipc.send(cpu, self.req_port, Message { sender: 0, words: [0; 8] });
        self.ipc.receive(cpu, self.req_port);
        let cs = cpu.clock() - t0;
        let local = total.saturating_sub(cs);
        DesRecipe::one_lock(local, cs, lock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hector_sim::MachineConfig;

    #[test]
    fn msg_rpc_is_slower_than_ppc() {
        let mut k = Kernel::boot(MachineConfig::hector(4));
        let mut rpc = MsgRpc::new(&mut k, 0);
        for _ in 0..3 {
            rpc.round_trip(&mut k, 0);
        }
        let t = rpc.round_trip(&mut k, 0);
        // The PPC user-to-user warm round trip is ~28-32 us; the message
        // path with two full switches and shared-queue copies must cost
        // clearly more.
        assert!(t.as_us() > 40.0, "message RPC too cheap: {t}");
    }

    #[test]
    fn recipe_has_meaningful_serial_share() {
        let mut k = Kernel::boot(MachineConfig::hector(4));
        let mut rpc = MsgRpc::new(&mut k, 0);
        let r = rpc.des_recipe(&mut k, 1, 0);
        assert!(r.serialized.as_us() > 3.0, "{:?}", r.serialized);
        assert!(r.local > r.serialized);
    }
}
