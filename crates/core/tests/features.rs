//! Integration tests for the §4 machinery: Frank-mediated registration,
//! naming, authentication, variants, kill/exchange, multi-page stacks,
//! trust groups, and Bob.

use std::cell::RefCell;
use std::rc::Rc;

use hector_sim::MachineConfig;
use ppc_core::bob::{boot_with_bob, install_bob};
use ppc_core::call::null_handler;
use ppc_core::entry::EntryState;
use ppc_core::{PpcError, PpcSystem, ServiceSpec, FIRST_DYNAMIC_EP};

fn sys(n: usize) -> PpcSystem {
    PpcSystem::boot(MachineConfig::hector(n))
}

#[test]
fn frank_mediated_registration_is_a_real_ppc_call() {
    let mut s = sys(1);
    let prog = s.kernel.new_program_id();
    let client = s.new_client(0, prog);
    let asid = s.kernel.create_space("svc");
    let calls_before = s.stats.calls;
    let ep = s
        .register_service(0, client, ServiceSpec::new(asid).owned_by(prog), null_handler())
        .expect("register through Frank");
    assert!(ep >= FIRST_DYNAMIC_EP);
    assert_eq!(s.stats.calls, calls_before + 1, "registration = one PPC call to Frank");
    // The new service is immediately callable.
    s.call(0, client, ep, [0; 8]).expect("call new service");
}

#[test]
fn name_server_roundtrip_via_ppc_calls() {
    let mut s = sys(2);
    let prog = s.kernel.new_program_id();
    let client = s.new_client(0, prog);
    let asid = s.kernel.create_space("svc");
    let ep = s.bind_entry_boot(ServiceSpec::new(asid), null_handler()).unwrap();

    s.ns_register(0, client, "my-service", ep).expect("register name");
    assert_eq!(s.ns_lookup(0, client, "my-service").unwrap(), Some(ep));
    assert_eq!(s.ns_lookup(0, client, "nonesuch").unwrap(), None);
    s.ns_unregister(0, client, "my-service").expect("unregister");
    assert_eq!(s.ns_lookup(0, client, "my-service").unwrap(), None);
}

#[test]
fn bob_denies_unknown_programs_when_closed() {
    let mut s = sys(1);
    let bob = install_bob(&mut s, false).expect("install bob (default deny)");
    let h = bob.create_file(&mut s, "secret", 1, 0);
    let prog = s.kernel.new_program_id();
    let client = s.new_client(0, prog);
    let err = bob.get_length(&mut s, 0, client, h).unwrap_err();
    assert_eq!(err, PpcError::PermissionDenied(prog));
    // Grant and retry.
    bob.acl.borrow_mut().allow(prog, 1);
    assert_eq!(bob.get_length(&mut s, 0, client, h).unwrap(), 1);
    // Only the attempt made after the client record existed is accounted
    // (the denied probe hit the default policy, not a record).
    assert_eq!(bob.acl.borrow().client(prog).unwrap().calls, 1);
}

#[test]
fn async_call_requeues_caller_and_discards_results() {
    let mut s = sys(1);
    let asid = s.kernel.create_space("svc");
    let ep = s
        .bind_entry_boot(
            ServiceSpec::new(asid),
            Rc::new(|_s, ctx| [ctx.args[0] * 2, 0, 0, 0, 0, 0, 0, 0]),
        )
        .unwrap();
    let prog = s.kernel.new_program_id();
    let client = s.new_client(0, prog);
    let h = s.call_async(0, client, ep, [21, 0, 0, 0, 0, 0, 0, 0]).expect("async");
    assert_eq!(s.async_log[h].rets[0], 42);
    assert!(!s.async_log[h].caller_waited);
    assert_eq!(s.stats.async_calls, 1);
    assert_eq!(s.stats.calls, 0, "async is not a sync call");
}

#[test]
fn interrupt_and_upcall_variants_dispatch() {
    let mut s = sys(2);
    let hits = Rc::new(RefCell::new(Vec::new()));
    let hits2 = Rc::clone(&hits);
    let ep = s
        .bind_entry_boot(
            ServiceSpec::new(hector_sim::tlb::ASID_KERNEL).name("dev"),
            Rc::new(move |_s, ctx| {
                hits2.borrow_mut().push((ctx.args[0] >> 32) as u32);
                [1; 8]
            }),
        )
        .unwrap();
    s.dispatch_interrupt(1, ep, 0x21, [0; 6]).expect("interrupt");
    s.upcall(1, ep, [0; 8]).expect("upcall");
    assert_eq!(s.stats.interrupts, 1);
    assert_eq!(s.stats.upcalls, 1);
    assert_eq!(hits.borrow().len(), 2);
    assert_eq!(hits.borrow()[0], 0x21, "vector delivered in args[0] high bits");
}

#[test]
fn soft_kill_via_frank_drains_and_hard_kill_aborts() {
    let mut s = sys(2);
    let prog = s.kernel.new_program_id();
    let client = s.new_client(0, prog);
    let asid = s.kernel.create_space("victim");
    let ep = s
        .bind_entry_boot(ServiceSpec::new(asid).owned_by(prog), null_handler())
        .unwrap();
    s.call(0, client, ep, [0; 8]).unwrap();

    s.soft_kill_entry(0, client, ep).expect("soft kill via Frank");
    assert_eq!(s.entries[ep].state, EntryState::Dead, "no calls in flight: reaped at once");
    assert_eq!(s.call(0, client, ep, [0; 8]), Err(PpcError::EntryDead(ep)));

    // Hard kill of another program's entry is denied.
    let other_prog = s.kernel.new_program_id();
    let other = s.new_client(1, other_prog);
    let asid2 = s.kernel.create_space("victim2");
    let ep2 = s
        .bind_entry_boot(ServiceSpec::new(asid2).owned_by(prog), null_handler())
        .unwrap();
    assert!(s.hard_kill_entry(1, other, ep2).is_err());
    s.hard_kill_entry(0, client, ep2).expect("owner may hard kill");
    assert_eq!(s.entries[ep2].state, EntryState::Dead);
}

#[test]
fn hard_kill_during_nested_call_aborts_outer() {
    // A handler that hard-kills its own entry point (via Frank) while the
    // call is in flight: the caller must observe Aborted.
    let mut s = sys(2);
    let prog = s.kernel.new_program_id();
    let client = s.new_client(0, prog);
    let asid = s.kernel.create_space("suicidal");
    let ep_cell = Rc::new(RefCell::new(0usize));
    let ep_cell2 = Rc::clone(&ep_cell);
    let ep = s
        .bind_entry_boot(
            ServiceSpec::new(asid).owned_by(0),
            Rc::new(move |s: &mut PpcSystem, ctx| {
                let me = *ep_cell2.borrow();
                ppc_core::kill::hard_kill(s, ctx.cpu, me, 0).expect("kill self");
                [0; 8]
            }),
        )
        .unwrap();
    *ep_cell.borrow_mut() = ep;
    assert_eq!(s.call(0, client, ep, [0; 8]), Err(PpcError::Aborted(ep)));
}

#[test]
fn exchange_replaces_server_online() {
    let mut s = sys(1);
    let prog = s.kernel.new_program_id();
    let client = s.new_client(0, prog);
    let asid = s.kernel.create_space("svc");
    let ep = s
        .bind_entry_boot(ServiceSpec::new(asid).owned_by(prog), Rc::new(|_s, _c| [1; 8]))
        .unwrap();
    assert_eq!(s.call(0, client, ep, [0; 8]).unwrap()[0], 1);
    s.exchange_entry(0, client, ep, Rc::new(|_s, _c| [2; 8])).expect("exchange");
    assert_eq!(s.call(0, client, ep, [0; 8]).unwrap()[0], 2);
    assert_eq!(s.entries[ep].state, EntryState::Active, "no downtime");
}

#[test]
fn reclaimed_slot_can_be_rebound() {
    let mut s = sys(1);
    let prog = s.kernel.new_program_id();
    let client = s.new_client(0, prog);
    let asid = s.kernel.create_space("svc");
    let ep = s
        .bind_entry_boot(ServiceSpec::new(asid).owned_by(prog), null_handler())
        .unwrap();
    s.hard_kill_entry(0, client, ep).unwrap();
    ppc_core::kill::reclaim_slot(&mut s, ep, prog).expect("reclaim");
    let ep2 = s
        .bind_entry_boot(ServiceSpec::new(asid).at(ep), Rc::new(|_s, _c| [9; 8]))
        .expect("rebind at reclaimed id");
    assert_eq!(ep2, ep);
    assert_eq!(s.call(0, client, ep2, [0; 8]).unwrap()[0], 9);
}

#[test]
fn multi_page_stacks_cost_more_but_work() {
    let mut one = sys(1);
    let asid1 = one.kernel.create_space("svc1");
    let ep1 = one.bind_entry_boot(ServiceSpec::new(asid1), null_handler()).unwrap();
    let p1 = one.kernel.new_program_id();
    let c1 = one.new_client(0, p1);

    let mut four = sys(1);
    let asid4 = four.kernel.create_space("svc4");
    let ep4 = four
        .bind_entry_boot(ServiceSpec::new(asid4).stack_pages(4), null_handler())
        .unwrap();
    let p4 = four.kernel.new_program_id();
    let c4 = four.new_client(0, p4);

    // Warm both.
    for _ in 0..4 {
        one.call(0, c1, ep1, [0; 8]).unwrap();
        four.call(0, c4, ep4, [0; 8]).unwrap();
    }
    assert_eq!(four.stats.stack_pages_created, 3, "Frank created the extra pages once");

    let t1 = {
        let t = one.kernel.machine.cpu(0).clock();
        one.call(0, c1, ep1, [0; 8]).unwrap();
        one.kernel.machine.cpu(0).clock() - t
    };
    let t4 = {
        let t = four.kernel.machine.cpu(0).clock();
        four.call(0, c4, ep4, [0; 8]).unwrap();
        four.kernel.machine.cpu(0).clock() - t
    };
    assert!(t4 > t1, "multi-page path must cost more: {t4} vs {t1}");
    // Spare pages were recycled, not re-created.
    assert_eq!(four.stats.stack_pages_created, 3);
    assert_eq!(four.percpu[0].spare_stacks.len(), 3, "returned to the list");
}

#[test]
fn hold_cd_with_multi_page_stacks_pins_extras() {
    let mut s = sys(1);
    let asid = s.kernel.create_space("svc");
    let ep = s
        .bind_entry_boot(ServiceSpec::new(asid).stack_pages(3).hold_cd(), null_handler())
        .unwrap();
    let prog = s.kernel.new_program_id();
    let client = s.new_client(0, prog);
    for _ in 0..5 {
        s.call(0, client, ep, [0; 8]).unwrap();
    }
    assert_eq!(s.stats.stack_pages_created, 2, "extras created exactly once, then pinned");
    assert!(s.percpu[0].spare_stacks.is_empty(), "pinned pages never hit the free list");
}

#[test]
fn hold_cd_entries_pin_distinct_descriptors() {
    // Regression: the call that pins a hold-CD must not release it back
    // to the pool, or every hold-CD service would share one stack.
    let mut s = sys(1);
    let mut eps = Vec::new();
    let stacks = Rc::new(RefCell::new(Vec::new()));
    for i in 0..4 {
        let asid = s.kernel.create_space(&format!("h{i}"));
        let stacks2 = Rc::clone(&stacks);
        let ep = s
            .bind_entry_boot(
                ServiceSpec::new(asid).hold_cd(),
                Rc::new(move |_s, ctx| {
                    stacks2.borrow_mut().push((ctx.ep, ctx.stack.base));
                    ctx.args
                }),
            )
            .unwrap();
        eps.push(ep);
    }
    let prog = s.kernel.new_program_id();
    let client = s.new_client(0, prog);
    for _ in 0..2 {
        for &ep in &eps {
            s.call(0, client, ep, [0; 8]).unwrap();
        }
    }
    // Each entry saw the same stack both rounds, and no two entries share.
    let seen = stacks.borrow();
    for (i, &ep) in eps.iter().enumerate() {
        assert_eq!(seen[i].0, ep);
        assert_eq!(seen[i].1, seen[i + 4].1, "entry keeps its pinned stack");
    }
    let distinct: std::collections::HashSet<_> = seen[..4].iter().map(|(_, b)| *b).collect();
    assert_eq!(distinct.len(), 4, "pinned stacks are per-entry, never shared");
}

#[test]
fn trust_groups_partition_cd_recycling() {
    let mut s = sys(1);
    let asid_a = s.kernel.create_space("a");
    let asid_b = s.kernel.create_space("b");
    let ep_a = s
        .bind_entry_boot(ServiceSpec::new(asid_a).trust_group(1), null_handler())
        .unwrap();
    let ep_b = s
        .bind_entry_boot(ServiceSpec::new(asid_b).trust_group(2), null_handler())
        .unwrap();
    let prog = s.kernel.new_program_id();
    let client = s.new_client(0, prog);
    // Both groups start empty (boot CDs are group 0): Frank creates one
    // CD per group on first call.
    s.call(0, client, ep_a, [0; 8]).unwrap();
    s.call(0, client, ep_b, [0; 8]).unwrap();
    assert_eq!(s.stats.cds_created, 2, "one CD per trust group");
    // Subsequent calls recycle within the group — no more creation.
    for _ in 0..3 {
        s.call(0, client, ep_a, [0; 8]).unwrap();
        s.call(0, client, ep_b, [0; 8]).unwrap();
    }
    assert_eq!(s.stats.cds_created, 2);
}

#[test]
fn figure3_setup_smoke() {
    let (mut s, bob, handles) = boot_with_bob(MachineConfig::hector(4), 4);
    assert_eq!(handles.len(), 4);
    let prog = s.kernel.new_program_id();
    let client = s.new_client(2, prog);
    for &h in &handles {
        assert!(bob.get_length(&mut s, 2, client, h).unwrap() >= 1000);
    }
    assert_eq!(s.naming.borrow().lookup("bob"), Some(bob.ep));
}

#[test]
fn worker_pool_grows_under_nested_reentry() {
    // A service that calls itself once: needs two workers on one CPU.
    let mut s = sys(1);
    let asid = s.kernel.create_space("recur");
    let ep_cell = Rc::new(RefCell::new(0usize));
    let ep_cell2 = Rc::clone(&ep_cell);
    let ep = s
        .bind_entry_boot(
            ServiceSpec::new(asid),
            Rc::new(move |s: &mut PpcSystem, ctx| {
                if ctx.args[0] > 0 {
                    let me = *ep_cell2.borrow();
                    let mut a = ctx.args;
                    a[0] -= 1;
                    let r = s.call(ctx.cpu, ctx.worker, me, a).unwrap();
                    [r[0] + 1, 0, 0, 0, 0, 0, 0, 0]
                } else {
                    [100, 0, 0, 0, 0, 0, 0, 0]
                }
            }),
        )
        .unwrap();
    *ep_cell.borrow_mut() = ep;
    let prog = s.kernel.new_program_id();
    let client = s.new_client(0, prog);
    let r = s.call(0, client, ep, [3, 0, 0, 0, 0, 0, 0, 0]).unwrap();
    assert_eq!(r[0], 103);
    assert!(s.stats.workers_created >= 3, "recursion forced pool growth");
    // Depth-4 chain completed: 4 calls.
    assert_eq!(s.stats.calls, 4);
}
