//! Failure injection: resource caps exhaust the Frank slow paths.
//!
//! The paper's Frank always succeeds ("all its resources are
//! preallocated"); a hardened deployment bounds kernel memory. These
//! tests drive every dynamic-allocation path into its cap and verify the
//! system degrades to clean `NoResources` errors — and recovers.

use std::cell::RefCell;
use std::rc::Rc;

use hector_sim::MachineConfig;
use ppc_core::call::null_handler;
use ppc_core::{PpcError, PpcSystem, ServiceSpec};

fn recursive_system(depth_limit: Option<u64>) -> (PpcSystem, usize, usize) {
    let mut sys = PpcSystem::boot(MachineConfig::hector(1));
    sys.limits.max_workers = depth_limit;
    // Plenty of CDs so the worker cap is what binds.
    sys.limits.max_cds = None;
    let asid = sys.kernel.create_space("recur");
    let ep_cell = Rc::new(RefCell::new(0usize));
    let ep_cell2 = Rc::clone(&ep_cell);
    let ep = sys
        .bind_entry_boot(
            ServiceSpec::new(asid),
            Rc::new(move |s: &mut PpcSystem, ctx| {
                if ctx.args[0] == 0 {
                    return [0; 8];
                }
                let me = *ep_cell2.borrow();
                let mut a = ctx.args;
                a[0] -= 1;
                match s.call(ctx.cpu, ctx.worker, me, a) {
                    Ok(r) => [r[0] + 1, r[1], 0, 0, 0, 0, 0, 0],
                    Err(PpcError::NoResources(_)) => [0, 1, 0, 0, 0, 0, 0, 0],
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }),
        )
        .unwrap();
    *ep_cell.borrow_mut() = ep;
    let prog = sys.kernel.new_program_id();
    let client = sys.new_client(0, prog);
    (sys, ep, client)
}

#[test]
fn worker_cap_turns_deep_recursion_into_no_resources() {
    // Cap Frank at 2 extra workers: recursion deeper than 3 (1 pooled +
    // 2 created) hits the cap, which the handler observes and reports.
    let (mut sys, ep, client) = recursive_system(Some(2));
    let r = sys.call(0, client, ep, [10, 0, 0, 0, 0, 0, 0, 0]).unwrap();
    assert_eq!(r[1], 1, "the innermost frame saw NoResources");
    assert!(r[0] < 10, "recursion stopped early: reached {}", r[0]);
    assert_eq!(sys.stats.workers_created, 2, "exactly the cap");
}

#[test]
fn uncapped_recursion_completes() {
    let (mut sys, ep, client) = recursive_system(None);
    let r = sys.call(0, client, ep, [10, 0, 0, 0, 0, 0, 0, 0]).unwrap();
    assert_eq!(r[1], 0, "no resource failure");
    assert_eq!(r[0], 10);
}

#[test]
fn system_recovers_after_cap_hit() {
    let (mut sys, ep, client) = recursive_system(Some(1));
    let r = sys.call(0, client, ep, [5, 0, 0, 0, 0, 0, 0, 0]).unwrap();
    assert_eq!(r[1], 1);
    // Shallow calls still work fine afterwards (pools were recycled).
    for _ in 0..5 {
        let r = sys.call(0, client, ep, [1, 0, 0, 0, 0, 0, 0, 0]).unwrap();
        assert_eq!(r, [1, 0, 0, 0, 0, 0, 0, 0]);
    }
}

#[test]
fn cd_cap_fails_new_trust_groups() {
    let mut sys = PpcSystem::boot(MachineConfig::hector(1));
    sys.limits.max_cds = Some(0); // boot CDs (group 0) only
    let asid = sys.kernel.create_space("grouped");
    let ep = sys
        .bind_entry_boot(ServiceSpec::new(asid).trust_group(9), null_handler())
        .unwrap();
    let prog = sys.kernel.new_program_id();
    let client = sys.new_client(0, prog);
    // Group 9 has no CDs and Frank may not create one.
    assert!(matches!(
        sys.call(0, client, ep, [0; 8]),
        Err(PpcError::NoResources(_))
    ));
    // Group-0 services are unaffected.
    let asid0 = sys.kernel.create_space("plain");
    let ep0 = sys.bind_entry_boot(ServiceSpec::new(asid0), null_handler()).unwrap();
    sys.call(0, client, ep0, [0; 8]).expect("boot CDs still serve group 0");
}

#[test]
fn stack_page_cap_fails_multipage_services() {
    let mut sys = PpcSystem::boot(MachineConfig::hector(1));
    sys.limits.max_stack_pages = Some(1);
    let asid = sys.kernel.create_space("big-stack");
    let ep = sys
        .bind_entry_boot(ServiceSpec::new(asid).stack_pages(4), null_handler())
        .unwrap();
    let prog = sys.kernel.new_program_id();
    let client = sys.new_client(0, prog);
    // Needs 3 extra pages, cap allows 1.
    assert!(matches!(sys.call(0, client, ep, [0; 8]), Err(PpcError::NoResources(_))));
    assert_eq!(sys.stats.stack_pages_created, 1);
    // The page taken before the failure was returned to the spare list.
    assert_eq!(sys.percpu[0].spare_stacks.len(), 1);
    // Single-page services still run.
    let asid1 = sys.kernel.create_space("small");
    let ep1 = sys.bind_entry_boot(ServiceSpec::new(asid1), null_handler()).unwrap();
    sys.call(0, client, ep1, [0; 8]).expect("single-page unaffected");
}

#[test]
fn failed_calls_are_still_charged() {
    // Even a resource-failed call costs cycles (trap in, redirect, trap
    // out) — failure is not free.
    let (mut sys, ep, client) = recursive_system(Some(0));
    let t0 = sys.kernel.machine.cpu(0).clock();
    let r = sys.call(0, client, ep, [3, 0, 0, 0, 0, 0, 0, 0]).unwrap();
    assert_eq!(r[1], 1);
    assert!(sys.kernel.machine.cpu(0).clock() > t0);
}
