//! End-to-end fastpath tests: the paper's central claims as assertions.
//!
//! * the warm fastpath accesses **no shared data** and takes **no locks**;
//! * the Figure-2 condition ordering holds (hold-CD < no-CD, kernel < user,
//!   primed < flushed) with totals in the paper's neighbourhood;
//! * the fastpath footprint is ~200 instructions / a handful of facility
//!   cache lines.

use std::rc::Rc;

use hector_sim::cpu::CostCategory;
use hector_sim::MachineConfig;
use ppc_core::microbench::{measure, setup, Condition, NullCallBench};
use ppc_core::{PpcSystem, ServiceSpec};

#[test]
fn warm_fastpath_shares_nothing_and_locks_nothing() {
    let NullCallBench { mut sys, ep, client } = setup(false, false);
    for _ in 0..4 {
        sys.call(0, client, ep, [0; 8]).unwrap();
    }
    let c = sys.kernel.machine.cpu_mut(0);
    c.begin_measure();
    sys.call(0, client, ep, [0; 8]).unwrap();
    let stats = sys.kernel.machine.cpu_mut(0).path_stats().clone();
    assert_eq!(stats.shared_accesses, 0, "PPC fastpath must access no shared data");
    assert_eq!(stats.lock_acquires, 0, "PPC fastpath must take no locks");
}

#[test]
fn fastpath_instruction_count_near_200() {
    let NullCallBench { mut sys, ep, client } = setup(false, false);
    for _ in 0..4 {
        sys.call(0, client, ep, [0; 8]).unwrap();
    }
    let c = sys.kernel.machine.cpu_mut(0);
    c.begin_measure();
    sys.call(0, client, ep, [0; 8]).unwrap();
    let stats = sys.kernel.machine.cpu_mut(0).path_stats().clone();
    // "only 200 instructions ... are required to complete most calls";
    // our count includes the client stub and the null server body.
    assert!(
        (120..400).contains(&(stats.instructions as usize)),
        "instructions on the warm fastpath: {}",
        stats.instructions
    );
}

#[test]
fn figure2_totals_land_near_paper() {
    // (kernel_server, hold_cd, flushed) -> paper total in us.
    let cases = [
        (false, false, false, 32.4),
        (false, true, false, 30.0),
        (false, false, true, 52.2),
        (false, true, true, 48.9),
        (true, false, false, 22.2),
        (true, true, false, 19.2),
        (true, false, true, 42.0),
        (true, true, true, 39.6),
    ];
    for (kernel_server, hold_cd, flushed, paper) in cases {
        let bd = measure(Condition { kernel_server, hold_cd, flushed });
        let us = bd.total().as_us();
        println!(
            "kernel={kernel_server} hold={hold_cd} flushed={flushed}: {us:.1} us (paper {paper})"
        );
        println!("{bd}");
        let ratio = us / paper;
        assert!(
            (0.6..1.67).contains(&ratio),
            "condition (k={kernel_server},h={hold_cd},f={flushed}): {us:.1} us vs paper {paper} us"
        );
    }
}

#[test]
fn condition_ordering_matches_paper() {
    let t = |k, h, f| measure(Condition { kernel_server: k, hold_cd: h, flushed: f }).total();
    // hold-CD is cheaper than no-CD in every group.
    assert!(t(false, true, false) < t(false, false, false));
    assert!(t(true, true, false) < t(true, false, false));
    // kernel server is cheaper than user server.
    assert!(t(true, false, false) < t(false, false, false));
    assert!(t(true, true, false) < t(false, true, false));
    // flushed costs substantially more than primed.
    assert!(t(false, false, true) > t(false, false, false));
    assert!(t(true, false, true) > t(true, false, false));
}

#[test]
fn hold_cd_saves_two_to_three_microseconds() {
    let no_cd = measure(Condition { kernel_server: false, hold_cd: false, flushed: false });
    let hold = measure(Condition { kernel_server: false, hold_cd: true, flushed: false });
    let delta = no_cd.total().as_us() - hold.total().as_us();
    assert!((1.0..5.0).contains(&delta), "hold-CD saving {delta:.2} us (paper: 2-3 us)");
}

#[test]
fn flush_penalty_near_twenty_microseconds() {
    let primed = measure(Condition { kernel_server: false, hold_cd: false, flushed: false });
    let flushed = measure(Condition { kernel_server: false, hold_cd: false, flushed: true });
    let delta = flushed.total().as_us() - primed.total().as_us();
    // Paper: "times increase consistently by about 20 usec". Our model
    // charges a full 20-cycle fill for every cold line with no overlap,
    // so the penalty runs ~1.5x the paper's; the flushed *totals* stay
    // within the +-20% band (see EXPERIMENTS.md).
    assert!((12.0..36.0).contains(&delta), "flush penalty {delta:.2} us (paper: ~20 us)");
    // "about half of which is due to the cost of saving registers at user
    // level on the user stack" — the user save/restore category grows.
    let user_delta = flushed.get(CostCategory::UserSaveRestore).as_us()
        - primed.get(CostCategory::UserSaveRestore).as_us();
    assert!(user_delta > 2.0, "user save/restore flush delta {user_delta:.2} us");
}

#[test]
fn dirty_cache_and_icache_flush_add_20_to_30_us() {
    // §3: "Dirtying the cache and flushing the instruction cache can
    // increase the times by another 20-30 usec" (beyond the D-flushed
    // condition).
    let flushed = measure(Condition { kernel_server: false, hold_cd: false, flushed: true });
    let worst = ppc_core::microbench::measure_dirty_and_icache_flushed();
    let delta = worst.total().as_us() - flushed.total().as_us();
    assert!((14.0..45.0).contains(&delta), "dirty+icache delta {delta:.1} us (paper: 20-30)");
}

#[test]
fn trap_overhead_is_3_4us_user_and_1_7us_kernel() {
    let u = measure(Condition { kernel_server: false, hold_cd: false, flushed: false });
    let k = measure(Condition { kernel_server: true, hold_cd: false, flushed: false });
    assert!((u.get(CostCategory::TrapOverhead).as_us() - 3.36).abs() < 0.2);
    assert!((k.get(CostCategory::TrapOverhead).as_us() - 1.68).abs() < 0.2);
}

#[test]
fn trace_captures_the_whole_round_trip() {
    // The execution trace must account for the same cycles the breakdown
    // reports (minus the untraced pipeline-stall model), in category order
    // starting with the client stub and ending with its register restore.
    let NullCallBench { mut sys, ep, client } = setup(false, false);
    for _ in 0..4 {
        sys.call(0, client, ep, [0; 8]).unwrap();
    }
    let c = sys.kernel.machine.cpu_mut(0);
    c.trace_start();
    c.begin_measure();
    sys.call(0, client, ep, [0; 8]).unwrap();
    let bd = sys.kernel.machine.cpu_mut(0).end_measure();
    sys.kernel.machine.cpu_mut(0).trace_stop();
    let cpu = sys.kernel.machine.cpu(0);
    let trace = cpu.trace();
    assert!(trace.len() > 100, "a full call is >100 operations: {}", trace.len());
    assert_eq!(trace.dropped(), 0);
    // Traced cycles + stalls == breakdown total.
    let stalls = bd.get(CostCategory::Unaccounted);
    assert_eq!(trace.total_cycles() + stalls, bd.total());
    // The first event is the client stub, the last the register restore.
    let first = trace.events().next().unwrap();
    let last = trace.events().last().unwrap();
    assert_eq!(first.category, CostCategory::UserSaveRestore);
    assert_eq!(last.category, CostCategory::UserSaveRestore);
}

#[test]
fn nested_calls_work() {
    // A server that calls another server (proxy): exercises reentrancy of
    // the call path on one CPU.
    let mut sys = PpcSystem::boot(MachineConfig::hector(1));
    let inner_asid = sys.kernel.create_space("inner");
    let inner = sys
        .bind_entry_boot(
            ServiceSpec::new(inner_asid).name("inner"),
            Rc::new(|_s, ctx| {
                let mut r = ctx.args;
                r[0] += 100;
                r
            }),
        )
        .unwrap();
    let outer_asid = sys.kernel.create_space("outer");
    let outer = sys
        .bind_entry_boot(
            ServiceSpec::new(outer_asid).name("outer"),
            Rc::new(move |s: &mut PpcSystem, ctx| {
                let mut fwd = ctx.args;
                fwd[0] += 1;
                s.call(ctx.cpu, ctx.worker, inner, fwd).unwrap()
            }),
        )
        .unwrap();
    let prog = sys.kernel.new_program_id();
    let client = sys.new_client(0, prog);
    let rets = sys.call(0, client, outer, [5, 0, 0, 0, 0, 0, 0, 0]).unwrap();
    assert_eq!(rets[0], 106);
    assert_eq!(sys.stats.calls, 2, "outer + nested inner");
}
