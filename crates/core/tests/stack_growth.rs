//! §4.5.4's two multi-page stack designs, side by side: eager per-call
//! mapping of a fixed multiple of pages, vs. lazy page-fault growth where
//! "the common case [stays] fast and only [...] servers that require the
//! extra space" pay.

use std::rc::Rc;

use hector_sim::time::Cycles;
use hector_sim::MachineConfig;
use ppc_core::{PpcError, PpcSystem, ServiceSpec};

/// Bind a 4-page service whose handler touches `args[0]` bytes of stack.
fn build(lazy: bool) -> (PpcSystem, usize, usize) {
    let mut sys = PpcSystem::boot(MachineConfig::hector(1));
    let asid = sys.kernel.create_space("svc");
    let mut spec = ServiceSpec::new(asid).stack_pages(4);
    if lazy {
        spec = spec.lazy_stack();
    }
    let ep = sys
        .bind_entry_boot(
            spec,
            Rc::new(|s: &mut PpcSystem, ctx| {
                let want = ctx.args[0];
                match s.touch_worker_stack(ctx, want) {
                    Ok(()) => [0; 8],
                    Err(PpcError::NoResources(_)) => [u64::MAX; 8],
                    Err(e) => panic!("{e}"),
                }
            }),
        )
        .unwrap();
    let prog = sys.kernel.new_program_id();
    let client = sys.new_client(0, prog);
    (sys, ep, client)
}

fn warm_call_cost(sys: &mut PpcSystem, ep: usize, client: usize, bytes: u64) -> Cycles {
    for _ in 0..3 {
        sys.call(0, client, ep, [bytes, 0, 0, 0, 0, 0, 0, 0]).unwrap();
    }
    let t = sys.kernel.machine.cpu(0).clock();
    sys.call(0, client, ep, [bytes, 0, 0, 0, 0, 0, 0, 0]).unwrap();
    sys.kernel.machine.cpu(0).clock() - t
}

#[test]
fn lazy_wins_the_shallow_common_case() {
    // A call that uses only a few hundred bytes of stack: the lazy design
    // maps nothing extra; the eager design maps and unmaps 3 pages.
    let (mut eager, ep_e, cl_e) = build(false);
    let (mut lazy, ep_l, cl_l) = build(true);
    let e = warm_call_cost(&mut eager, ep_e, cl_e, 512);
    let l = warm_call_cost(&mut lazy, ep_l, cl_l, 512);
    assert!(l < e, "lazy shallow call {l} must beat eager {e}");
}

#[test]
fn eager_wins_the_deep_case() {
    // A call that really uses all four pages: lazy pays three page faults
    // (trap + fault handler + map each); eager amortizes plain map costs.
    let (mut eager, ep_e, cl_e) = build(false);
    let (mut lazy, ep_l, cl_l) = build(true);
    let e = warm_call_cost(&mut eager, ep_e, cl_e, 4 * 4096);
    let l = warm_call_cost(&mut lazy, ep_l, cl_l, 4 * 4096);
    assert!(e < l, "eager deep call {e} must beat lazy {l}");
}

#[test]
fn lazy_pages_are_recycled_per_call() {
    let (mut sys, ep, client) = build(true);
    for _ in 0..4 {
        sys.call(0, client, ep, [3 * 4096, 0, 0, 0, 0, 0, 0, 0]).unwrap();
    }
    // Pages were created once, then recycled through the spare list.
    assert_eq!(sys.stats.stack_pages_created, 2);
    assert_eq!(sys.percpu[0].spare_stacks.len(), 2, "returned after each call");
}

#[test]
fn overflow_beyond_limit_is_detected() {
    let (mut sys, ep, client) = build(true);
    let r = sys.call(0, client, ep, [5 * 4096, 0, 0, 0, 0, 0, 0, 0]).unwrap();
    assert_eq!(r, [u64::MAX; 8], "handler saw the stack overflow");
    // And the system still serves shallow calls.
    let r = sys.call(0, client, ep, [100, 0, 0, 0, 0, 0, 0, 0]).unwrap();
    assert_eq!(r, [0; 8]);
}

#[test]
fn stack_overflow_raises_an_exception_upcall() {
    // §4.4: upcalls are "currently used for debugging and exception
    // handling". Register an exception server and verify a stack
    // overflow is delivered to it with the faulting entry and size.
    use std::cell::RefCell;
    let (mut sys, ep, client) = build(true);
    let log = Rc::new(RefCell::new(Vec::new()));
    let log2 = Rc::clone(&log);
    let exc_ep = sys
        .bind_entry_boot(
            ServiceSpec::new(hector_sim::tlb::ASID_KERNEL).name("exception-server"),
            Rc::new(move |_s, ctx| {
                log2.borrow_mut().push((ctx.args[0], ctx.args[1], ctx.args[2]));
                [0; 8]
            }),
        )
        .unwrap();
    sys.set_exception_server(exc_ep);

    let r = sys.call(0, client, ep, [9 * 4096, 0, 0, 0, 0, 0, 0, 0]).unwrap();
    assert_eq!(r, [u64::MAX; 8], "handler observed the overflow");
    let log = log.borrow();
    assert_eq!(log.len(), 1, "one exception upcall delivered");
    assert_eq!(log[0].0, ppc_core::variants::exception::STACK_OVERFLOW);
    assert_eq!(log[0].1, ep as u64, "faulting entry identified");
    assert_eq!(log[0].2, 9 * 4096, "requested size reported");
}

#[test]
fn single_page_services_unaffected_by_touch() {
    let mut sys = PpcSystem::boot(MachineConfig::hector(1));
    let asid = sys.kernel.create_space("svc");
    let ep = sys
        .bind_entry_boot(
            ServiceSpec::new(asid),
            Rc::new(|s: &mut PpcSystem, ctx| {
                s.touch_worker_stack(ctx, 1000).unwrap();
                [7; 8]
            }),
        )
        .unwrap();
    let prog = sys.kernel.new_program_id();
    let client = sys.new_client(0, prog);
    assert_eq!(sys.call(0, client, ep, [0; 8]).unwrap(), [7; 8]);
    assert_eq!(sys.stats.stack_pages_created, 0);
}
