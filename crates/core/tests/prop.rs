//! Property-based tests of the PPC facility's data structures.

use proptest::prelude::*;

use hector_sim::sym::PAddr;
use hector_sim::{Machine, MachineConfig};
use ppc_core::cd::CdPool;
use ppc_core::copy::{Grant, GrantTable};
use ppc_core::naming::{pack_name, unpack_name};

proptest! {
    // ---- CD pool never double-allocates ---------------------------------

    #[test]
    fn cd_pool_alloc_free_is_sound(ops in prop::collection::vec(any::<bool>(), 1..200)) {
        let mut m = Machine::new(MachineConfig::hector(1));
        let mut pool = CdPool::boot(&mut m, 0, 3);
        let mut live: Vec<usize> = Vec::new();
        for want_alloc in ops {
            if want_alloc {
                let cpu = m.cpu_mut(0);
                if let Some(id) = pool.alloc(cpu, 0) {
                    prop_assert!(!live.contains(&id), "double allocation of CD {id}");
                    live.push(id);
                }
            } else if let Some(id) = live.pop() {
                let cpu = m.cpu_mut(0);
                pool.release(cpu, id);
            }
        }
        // Everything adds up: free + live == total.
        prop_assert_eq!(pool.free_count(0) + live.len(), pool.total());
    }

    #[test]
    fn cd_pool_return_info_roundtrip(callers in prop::collection::vec(0usize..1000, 1..50)) {
        let mut m = Machine::new(MachineConfig::hector(1));
        let mut pool = CdPool::boot(&mut m, 0, 1);
        for caller in callers {
            let cpu = m.cpu_mut(0);
            let id = pool.alloc(cpu, 0).unwrap();
            pool.store_return_info(cpu, id, Some(caller));
            prop_assert_eq!(pool.load_return_info(cpu, id), Some(caller));
            prop_assert_eq!(pool.load_return_info(cpu, id), None, "linkage consumed");
            pool.release(cpu, id);
        }
    }

    // ---- name packing ---------------------------------------------------

    #[test]
    fn name_pack_unpack_roundtrip(name in "[a-zA-Z0-9_./-]{0,48}") {
        let w = pack_name(&name).unwrap();
        prop_assert_eq!(unpack_name(&w), name);
    }

    #[test]
    fn name_pack_rejects_oversize(name in "[a-z]{49,80}") {
        prop_assert!(pack_name(&name).is_err());
    }

    // ---- grant table algebra ----------------------------------------------

    #[test]
    fn grant_authorizes_exactly_contained_subranges(
        base in 0u64..1 << 20,
        len in 1u64..4096,
        q_off in 0u64..8192,
        q_len in 1u64..4096,
        write_grant in any::<bool>(),
        write_q in any::<bool>(),
    ) {
        let t = GrantTable::new();
        t.add(Grant {
            granter: 1,
            grantee: 2,
            grantee_program: 3,
            region: hector_sim::sym::Region { base: PAddr(base), len },
            write: write_grant,
        });
        let q_base = PAddr(base.wrapping_add(q_off));
        let contained = q_off.checked_add(q_len).is_some_and(|end| end <= len);
        let expect = contained && (!write_q || write_grant);
        prop_assert_eq!(t.authorizes(1, 3, q_base, q_len, write_q), expect);
        // Never authorizes the wrong principals.
        prop_assert!(!t.authorizes(2, 3, q_base, q_len, write_q));
        prop_assert!(!t.authorizes(1, 4, q_base, q_len, write_q));
    }

    #[test]
    fn revoke_is_complete_and_precise(grantees in prop::collection::vec(0usize..6, 1..30)) {
        let t = GrantTable::new();
        for g in &grantees {
            t.add(Grant {
                granter: 7,
                grantee: *g,
                grantee_program: 9,
                region: hector_sim::sym::Region { base: PAddr(0x1000), len: 64 },
                write: true,
            });
        }
        let target = grantees[0];
        let expected = grantees.iter().filter(|g| **g == target).count();
        prop_assert_eq!(t.revoke(7, target), expected);
        prop_assert_eq!(t.len(), grantees.len() - expected);
        prop_assert!(!t.authorizes(7, 9, PAddr(0x1000), 8, false) || grantees.iter().any(|g| *g != target));
    }

    // ---- the call itself is deterministic and total ------------------------

    #[test]
    fn echo_calls_return_args_verbatim(args in prop::array::uniform8(any::<u64>())) {
        let mut sys = ppc_core::PpcSystem::boot(MachineConfig::hector(1));
        let asid = sys.kernel.create_space("echo");
        let ep = sys
            .bind_entry_boot(
                ppc_core::ServiceSpec::new(asid),
                std::rc::Rc::new(|_s, ctx| ctx.args),
            )
            .unwrap();
        let prog = sys.kernel.new_program_id();
        let client = sys.new_client(0, prog);
        prop_assert_eq!(sys.call(0, client, ep, args).unwrap(), args);
    }
}
