//! Microbenchmark harness for the paper's Figure 2.
//!
//! "Figure 2 depicts the breakdown of the time to perform PPC operations
//! under a variety of conditions": {user→user, user→kernel} × {cache
//! primed, cache flushed} × {no dedicated CD, hold CD}. This module sets
//! up each condition, warms the system, and measures one round trip with
//! per-category attribution. It is used by the `ppc-bench` figure
//! regenerators and by the calibration tests.

use hector_sim::cpu::CostBreakdown;
use hector_sim::tlb::ASID_KERNEL;
use hector_sim::MachineConfig;
use hurricane_os::process::Pid;

use crate::call::null_handler;
use crate::entry::{EntryId, ServiceSpec};
use crate::PpcSystem;

/// One Figure-2 measurement condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Condition {
    /// Call a service in the supervisor address space ("User to Kernel")
    /// instead of a user-level server ("User to User").
    pub kernel_server: bool,
    /// The worker permanently holds its CD and stack ("hold CD").
    pub hold_cd: bool,
    /// Flush the data cache before the measured call ("cache flushed").
    pub flushed: bool,
}

impl Condition {
    /// The eight conditions in the paper's figure order (left to right:
    /// user-to-user primed {no CD, hold CD}, user-to-user flushed {...},
    /// then the same four for user-to-kernel).
    pub const ALL: [Condition; 8] = [
        Condition { kernel_server: false, hold_cd: false, flushed: false },
        Condition { kernel_server: false, hold_cd: true, flushed: false },
        Condition { kernel_server: false, hold_cd: false, flushed: true },
        Condition { kernel_server: false, hold_cd: true, flushed: true },
        Condition { kernel_server: true, hold_cd: false, flushed: false },
        Condition { kernel_server: true, hold_cd: true, flushed: false },
        Condition { kernel_server: true, hold_cd: false, flushed: true },
        Condition { kernel_server: true, hold_cd: true, flushed: true },
    ];

    /// The paper's measured total for this condition, in microseconds.
    pub fn paper_total_us(&self) -> f64 {
        match (self.kernel_server, self.hold_cd, self.flushed) {
            (false, false, false) => 32.4,
            (false, true, false) => 30.0,
            (false, false, true) => 52.2,
            (false, true, true) => 48.9,
            (true, false, false) => 22.2,
            (true, true, false) => 19.2,
            (true, false, true) => 42.0,
            (true, true, true) => 39.6,
        }
    }

    /// Figure label, e.g. "User to User / cache primed / hold CD".
    pub fn label(&self) -> String {
        format!(
            "{} / cache {} / {}",
            if self.kernel_server { "User to Kernel" } else { "User to User" },
            if self.flushed { "flushed" } else { "primed" },
            if self.hold_cd { "hold CD" } else { "no CD" },
        )
    }
}

/// A booted single-CPU system with one null server and one client, ready
/// for repeated measured calls.
pub struct NullCallBench {
    /// The system under test.
    pub sys: PpcSystem,
    /// The null server's entry point.
    pub ep: EntryId,
    /// The client process.
    pub client: Pid,
}

/// Build the benchmark system for a condition (warming not yet done).
pub fn setup(kernel_server: bool, hold_cd: bool) -> NullCallBench {
    let mut sys = PpcSystem::boot(MachineConfig::hector(1));
    let asid = if kernel_server { ASID_KERNEL } else { sys.kernel.create_space("null-server") };
    let mut spec = ServiceSpec::new(asid).name("null");
    if hold_cd {
        spec = spec.hold_cd();
    }
    let ep = sys.bind_entry_boot(spec, null_handler()).expect("bind null server");
    let prog = sys.kernel.new_program_id();
    let client = sys.new_client(0, prog);
    NullCallBench { sys, ep, client }
}

/// Warm rounds before a measured call (pools, caches, TLB, held CDs).
pub const WARM_CALLS: usize = 4;

/// Measure one round trip under `cond` (after [`WARM_CALLS`] warm calls).
pub fn measure(cond: Condition) -> CostBreakdown {
    let NullCallBench { mut sys, ep, client } = setup(cond.kernel_server, cond.hold_cd);
    for _ in 0..WARM_CALLS {
        sys.call(0, client, ep, [0; 8]).expect("warm call");
    }
    if cond.flushed {
        sys.kernel.machine.cpu_mut(0).prep_flush_dcache();
    }
    let c = sys.kernel.machine.cpu_mut(0);
    c.begin_measure();
    sys.call(0, client, ep, [1, 2, 3, 4, 5, 6, 7, 8]).expect("measured call");
    sys.kernel.machine.cpu_mut(0).end_measure()
}

/// The §3 worst-case condition beyond Figure 2's bars: "Dirtying the
/// cache and flushing the instruction cache can increase the times by
/// another 20-30 µsec." Measures a user-to-user call with the data cache
/// refilled with unrelated *dirty* lines (every miss pays a victim
/// writeback) and the instruction cache flushed (the stub, fastpath and
/// service code all re-fill).
pub fn measure_dirty_and_icache_flushed() -> CostBreakdown {
    let NullCallBench { mut sys, ep, client } = setup(false, false);
    for _ in 0..WARM_CALLS {
        sys.call(0, client, ep, [0; 8]).expect("warm call");
    }
    let c = sys.kernel.machine.cpu_mut(0);
    c.prep_pollute_dcache_dirty(3);
    c.prep_flush_icache();
    c.begin_measure();
    sys.call(0, client, ep, [1; 8]).expect("measured call");
    sys.kernel.machine.cpu_mut(0).end_measure()
}

/// Measure one round trip and return the warm path statistics (for the
/// footprint claims: instructions, distinct lines, shared accesses).
pub fn measure_path_stats(cond: Condition) -> hector_sim::cpu::PathStats {
    let NullCallBench { mut sys, ep, client } = setup(cond.kernel_server, cond.hold_cd);
    for _ in 0..WARM_CALLS {
        sys.call(0, client, ep, [0; 8]).expect("warm call");
    }
    if cond.flushed {
        sys.kernel.machine.cpu_mut(0).prep_flush_dcache();
    }
    sys.kernel.machine.cpu_mut(0).begin_measure();
    sys.call(0, client, ep, [0; 8]).expect("measured call");
    let stats = sys.kernel.machine.cpu_mut(0).path_stats().clone();
    sys.kernel.machine.cpu_mut(0).end_measure();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_conditions_enumerated_once() {
        assert_eq!(Condition::ALL.len(), 8);
        let mut seen = std::collections::HashSet::new();
        for c in Condition::ALL {
            assert!(seen.insert((c.kernel_server, c.hold_cd, c.flushed)));
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            Condition::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 8);
    }

    #[test]
    fn paper_totals_match_figure() {
        let sum: f64 = Condition::ALL.iter().map(|c| c.paper_total_us()).sum();
        assert!((sum - (32.4 + 30.0 + 52.2 + 48.9 + 22.2 + 19.2 + 42.0 + 39.6)).abs() < 1e-9);
    }

    #[test]
    fn measure_is_deterministic() {
        let c = Condition { kernel_server: false, hold_cd: false, flushed: false };
        assert_eq!(measure(c), measure(c));
    }
}
