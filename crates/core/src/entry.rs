//! Service entry points.
//!
//! §4.5.5: entry points are **small integers** (the table is capped at
//! 1024), so "a simple array with direct indexing can be used with each
//! processor having its own copy" — the fast path is one load from a
//! CPU-local table. Authentication is the server's job (§4.1), so handing
//! out small integers is safe.

use hector_sim::sym::Region;
use hector_sim::tlb::Asid;
use hurricane_os::process::{Pid, ProgramId};
use std::collections::HashMap;

/// A service entry-point identifier (small integer, < [`MAX_ENTRIES`]).
pub type EntryId = usize;

/// The paper's cap on simultaneously-bound entry points.
pub const MAX_ENTRIES: usize = 1024;

/// Identifies a stack-sharing trust group (§2: "collect servers that trust
/// each other into groups and only share stacks between servers in the
/// same group"). Group 0 is the default, fully-shared group.
pub type TrustGroup = u32;

/// Lifecycle state of an entry point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EntryState {
    /// Unbound slot.
    Free,
    /// Accepting calls.
    Active,
    /// Soft-killed: new calls are rejected, calls in progress drain
    /// (§4.5.2); resources are freed when the last call completes.
    SoftKilled,
    /// Hard-killed: resources freed, in-progress calls aborted.
    Dead,
}

/// Per-entry options.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EntryOptions {
    /// Workers permanently hold a CD and stack ("this is currently
    /// addressed by permitting workers to permanently hold on to a CD and
    /// stack" — 2–3 µs faster per call, worse cache sharing).
    pub hold_cd: bool,
    /// Stack-sharing trust group.
    pub trust_group: TrustGroup,
    /// Workers kept pooled per processor before Frank must create more.
    pub initial_workers: usize,
    /// Worker stack size in pages. 1 is the common fast case (§4.5.4:
    /// "we restrict stacks to one page"); larger values take the paper's
    /// proposed exceptional path — extra pages from an independent
    /// per-processor list, mapped per call.
    pub stack_pages: usize,
    /// §4.5.4's second alternative: "assign a larger virtual space for the
    /// stack. Accesses beyond the first page would result in a page fault
    /// and be handled by the normal page-fault handling mechanisms." With
    /// `lazy_stack`, `stack_pages` is the *limit*; pages 2.. are mapped on
    /// first touch (a charged fault) instead of eagerly on every call.
    pub lazy_stack: bool,
}

impl Default for EntryOptions {
    fn default() -> Self {
        EntryOptions {
            hold_cd: false,
            trust_group: 0,
            initial_workers: 1,
            stack_pages: 1,
            lazy_stack: false,
        }
    }
}

/// Specification of a service to bind (what a server passes to Frank).
#[derive(Clone, Debug)]
pub struct ServiceSpec {
    /// Address space the service's handlers execute in.
    pub asid: Asid,
    /// Options.
    pub opts: EntryOptions,
    /// Diagnostic name.
    pub name: String,
    /// Specific entry-point ID to bind, if the server obtained one
    /// (otherwise Frank picks the first free slot).
    pub want_ep: Option<EntryId>,
    /// Program that owns the entry (may kill/exchange it).
    pub owner: ProgramId,
}

impl ServiceSpec {
    /// A default-option service in `asid`.
    pub fn new(asid: Asid) -> Self {
        ServiceSpec {
            asid,
            opts: EntryOptions::default(),
            name: String::new(),
            want_ep: None,
            owner: 0,
        }
    }

    /// Set the diagnostic name.
    pub fn name(mut self, n: &str) -> Self {
        self.name = n.to_string();
        self
    }

    /// Enable hold-CD mode.
    pub fn hold_cd(mut self) -> Self {
        self.opts.hold_cd = true;
        self
    }

    /// Assign a stack-sharing trust group.
    pub fn trust_group(mut self, g: TrustGroup) -> Self {
        self.opts.trust_group = g;
        self
    }

    /// Pre-pool `n` workers per processor.
    pub fn initial_workers(mut self, n: usize) -> Self {
        self.opts.initial_workers = n;
        self
    }

    /// Request a specific entry-point ID.
    pub fn at(mut self, ep: EntryId) -> Self {
        self.want_ep = Some(ep);
        self
    }

    /// Use an `n`-page worker stack (n > 1 takes the §4.5.4 slow path).
    pub fn stack_pages(mut self, n: usize) -> Self {
        assert!(n >= 1, "a worker needs at least one stack page");
        self.opts.stack_pages = n;
        self
    }

    /// Grow the stack lazily by page fault instead of eager mapping
    /// (§4.5.4's second alternative); `stack_pages` becomes the limit.
    pub fn lazy_stack(mut self) -> Self {
        self.opts.lazy_stack = true;
        self
    }

    /// Set the owning program.
    pub fn owned_by(mut self, p: ProgramId) -> Self {
        self.owner = p;
        self
    }
}

/// Global (slow-path) metadata for one entry point.
#[derive(Clone, Debug)]
pub struct EntrySlot {
    /// Lifecycle state.
    pub state: EntryState,
    /// Address space of the service.
    pub asid: Asid,
    /// Options.
    pub opts: EntryOptions,
    /// Symbolic region of the service's call-handling code (instruction
    /// cache behaviour).
    pub service_code: Region,
    /// Calls currently executing (drain gate for soft kill).
    pub active_calls: u64,
    /// Owning program.
    pub owner: ProgramId,
    /// Diagnostic name.
    pub name: String,
}

impl EntrySlot {
    /// An unbound slot.
    pub fn free() -> Self {
        EntrySlot {
            state: EntryState::Free,
            asid: 0,
            opts: EntryOptions::default(),
            service_code: Region { base: hector_sim::sym::PAddr(0), len: 1 },
            active_calls: 0,
            owner: 0,
            name: String::new(),
        }
    }

    /// Can this entry accept a new call?
    pub fn accepts_calls(&self) -> bool {
        self.state == EntryState::Active
    }
}

/// Per-processor fast-path state for one entry point.
#[derive(Clone, Debug)]
pub struct LocalEntry {
    /// LIFO pool of idle workers on this processor.
    pub pool: Vec<Pid>,
    /// Symbolic memory of the pool head/links (CPU-local).
    pub pool_mem: Region,
    /// CDs held permanently by workers (hold-CD mode).
    pub held_cd: HashMap<Pid, crate::cd::CdId>,
    /// Extra stack pages held permanently by workers (hold-CD mode
    /// combined with multi-page stacks).
    pub held_extra: HashMap<Pid, Vec<Region>>,
    /// Workers created on this CPU for this entry (diagnostics).
    pub workers_created: u64,
}

impl LocalEntry {
    /// Fresh local state with an empty pool.
    pub fn new(pool_mem: Region) -> Self {
        LocalEntry {
            pool: Vec::new(),
            pool_mem,
            held_cd: HashMap::new(),
            held_extra: HashMap::new(),
            workers_created: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder_chains() {
        let s = ServiceSpec::new(3)
            .name("bob")
            .hold_cd()
            .trust_group(2)
            .initial_workers(4)
            .at(17)
            .owned_by(9);
        assert_eq!(s.asid, 3);
        assert_eq!(s.name, "bob");
        assert!(s.opts.hold_cd);
        assert_eq!(s.opts.trust_group, 2);
        assert_eq!(s.opts.initial_workers, 4);
        assert_eq!(s.want_ep, Some(17));
        assert_eq!(s.owner, 9);
    }

    #[test]
    fn free_slot_rejects_calls() {
        let s = EntrySlot::free();
        assert!(!s.accepts_calls());
        assert_eq!(s.state, EntryState::Free);
    }

    #[test]
    fn default_options() {
        let o = EntryOptions::default();
        assert!(!o.hold_cd);
        assert_eq!(o.trust_group, 0);
        assert_eq!(o.initial_workers, 1);
    }
}
