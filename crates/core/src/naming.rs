//! The Name Server (§4.5.5).
//!
//! Naming is deliberately separated from authentication (§4.1): entry
//! points are plain small integers, and the Name Server — itself an
//! ordinary PPC service at the well-known entry point
//! [`crate::NAME_SERVER_EP`] — maps human-readable service
//! names to them. "A client that wants to call the server obtains the
//! server's entry point ID from the Name Server, and uses the ID as an
//! argument on subsequent PPC operations."
//!
//! Names ride in the call's eight 64-bit argument words: `args[0]` is the
//! opcode, `args[1..7]` carry up to 48 bytes of name, `args[7]` the entry
//! point (for registration).

use std::collections::HashMap;
use std::rc::Rc;

use hector_sim::cpu::{CostCategory, CpuId};
use hurricane_os::process::Pid;

use crate::entry::EntryId;
use crate::{Handler, PpcError, PpcSystem, NAME_SERVER_EP};

/// Name Server opcodes.
pub mod ops {
    /// Register `name -> ep`.
    pub const REGISTER: u64 = 1;
    /// Look up `name`.
    pub const LOOKUP: u64 = 2;
    /// Remove a registration.
    pub const UNREGISTER: u64 = 3;
}

/// Maximum name length that fits in the register words.
pub const MAX_NAME: usize = 48;

/// The name table (the Name Server's private state).
#[derive(Debug, Default)]
pub struct NameTable {
    map: HashMap<String, EntryId>,
}

impl NameTable {
    /// An empty table.
    pub fn new() -> Self {
        NameTable { map: HashMap::new() }
    }

    /// Bind `name` to `ep`, returning the previous binding if any.
    pub fn register(&mut self, name: &str, ep: EntryId) -> Option<EntryId> {
        self.map.insert(name.to_string(), ep)
    }

    /// Resolve `name`.
    pub fn lookup(&self, name: &str) -> Option<EntryId> {
        self.map.get(name).copied()
    }

    /// Remove `name`, returning its binding.
    pub fn unregister(&mut self, name: &str) -> Option<EntryId> {
        self.map.remove(name)
    }

    /// Number of registered names.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Pack a service name into six argument words (zero-padded).
pub fn pack_name(name: &str) -> Result<[u64; 6], PpcError> {
    let bytes = name.as_bytes();
    if bytes.len() > MAX_NAME {
        return Err(PpcError::NoResources("name too long for register passing"));
    }
    let mut words = [0u64; 6];
    for (i, b) in bytes.iter().enumerate() {
        words[i / 8] |= (*b as u64) << ((i % 8) * 8);
    }
    Ok(words)
}

/// Unpack a name packed by [`pack_name`].
pub fn unpack_name(words: &[u64; 6]) -> String {
    let mut bytes = Vec::with_capacity(MAX_NAME);
    for w in words {
        for k in 0..8 {
            let b = ((w >> (k * 8)) & 0xff) as u8;
            if b == 0 {
                return String::from_utf8_lossy(&bytes).into_owned();
            }
            bytes.push(b);
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// The Name Server's handler.
pub fn name_server_handler() -> Handler {
    Rc::new(|sys: &mut PpcSystem, ctx: &crate::HandlerCtx| {
        // Table work: a hash lookup over cached, server-local data.
        let c = sys.kernel.machine.cpu_mut(ctx.cpu);
        c.with_category(CostCategory::ServerTime, |c| c.exec(40));
        let name_words: [u64; 6] = ctx.args[1..7].try_into().unwrap();
        let name = unpack_name(&name_words);
        let naming = Rc::clone(&sys.naming);
        let mut table = naming.borrow_mut();
        match ctx.args[0] {
            ops::REGISTER => {
                let ep = ctx.args[7] as EntryId;
                let prev = table.register(&name, ep);
                [0, prev.map(|p| p as u64 + 1).unwrap_or(0), 0, 0, 0, 0, 0, 0]
            }
            ops::LOOKUP => match table.lookup(&name) {
                Some(ep) => [0, 1, ep as u64, 0, 0, 0, 0, 0],
                None => [0, 0, 0, 0, 0, 0, 0, 0],
            },
            ops::UNREGISTER => {
                let prev = table.unregister(&name);
                [0, prev.map(|p| p as u64 + 1).unwrap_or(0), 0, 0, 0, 0, 0, 0]
            }
            _ => [u64::MAX, 0, 0, 0, 0, 0, 0, 0],
        }
    })
}

impl PpcSystem {
    /// Register `name -> ep` with the Name Server via a real PPC call.
    pub fn ns_register(
        &mut self,
        cpu: CpuId,
        caller: Pid,
        name: &str,
        ep: EntryId,
    ) -> Result<(), PpcError> {
        let w = pack_name(name)?;
        let args = [ops::REGISTER, w[0], w[1], w[2], w[3], w[4], w[5], ep as u64];
        self.call(cpu, caller, NAME_SERVER_EP, args)?;
        Ok(())
    }

    /// Look `name` up at the Name Server via a real PPC call.
    pub fn ns_lookup(
        &mut self,
        cpu: CpuId,
        caller: Pid,
        name: &str,
    ) -> Result<Option<EntryId>, PpcError> {
        let w = pack_name(name)?;
        let args = [ops::LOOKUP, w[0], w[1], w[2], w[3], w[4], w[5], 0];
        let rets = self.call(cpu, caller, NAME_SERVER_EP, args)?;
        Ok(if rets[1] == 1 { Some(rets[2] as EntryId) } else { None })
    }

    /// Remove `name` from the Name Server via a real PPC call.
    pub fn ns_unregister(
        &mut self,
        cpu: CpuId,
        caller: Pid,
        name: &str,
    ) -> Result<(), PpcError> {
        let w = pack_name(name)?;
        let args = [ops::UNREGISTER, w[0], w[1], w[2], w[3], w[4], w[5], 0];
        self.call(cpu, caller, NAME_SERVER_EP, args)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for name in ["", "a", "bob", "file-server", "x".repeat(48).as_str()] {
            let w = pack_name(name).unwrap();
            assert_eq!(unpack_name(&w), name);
        }
    }

    #[test]
    fn overlong_name_rejected() {
        assert!(pack_name(&"y".repeat(49)).is_err());
    }

    #[test]
    fn table_basics() {
        let mut t = NameTable::new();
        assert!(t.is_empty());
        assert_eq!(t.register("bob", 7), None);
        assert_eq!(t.register("bob", 9), Some(7));
        assert_eq!(t.lookup("bob"), Some(9));
        assert_eq!(t.unregister("bob"), Some(9));
        assert_eq!(t.lookup("bob"), None);
        assert_eq!(t.len(), 0);
    }
}
