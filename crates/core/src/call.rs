//! The PPC call path.
//!
//! The synchronous round trip (§2, measured in the paper's Figure 2):
//!
//! 1. client stub saves its live registers and traps (`user save/restore`,
//!    `trap overhead`);
//! 2. the kernel looks the entry point up in the **CPU-local** service
//!    table, allocates a worker from the entry's **CPU-local** pool and a
//!    CD from the **CPU-local** CD pool (`PPC kernel`, `CD manipulation`);
//!    empty pools redirect to Frank (§4.5.6), who creates resources and
//!    forwards the call;
//! 3. the CD's stack page is mapped into the server's address space and
//!    the worker is dispatched with a hand-off switch (`TLB setup`,
//!    `kernel save/restore`) — for kernel-space services neither the user
//!    TLB context nor the extra trap pair is needed, which is why the
//!    paper's user-to-kernel calls are ~10 µs cheaper;
//! 4. the worker executes the service handler with the 8 argument words in
//!    registers (`server time`);
//! 5. the return path retraces the entry path, recycling CD and worker.
//!
//! In hold-CD mode (§2) the worker permanently keeps a CD and mapped
//! stack: the alloc/free and map/unmap steps disappear, saving the paper's
//! observed 2–3 µs at the price of defeating stack sharing.

use hector_sim::cpu::CostCategory;
use hector_sim::sym::MemAttrs;
use hector_sim::tlb::Space;
use hector_sim::CpuId;
use hurricane_os::process::{Pid, ProcState, Process};
use hurricane_os::trap;

use crate::cd::CdId;

/// Offset of the client stub's register-save area within the user stack
/// page: near the top (stacks grow down) and off the page-aligned base so
/// hot per-call lines spread across cache sets.
pub const USER_SAVE_OFF: u64 = 4096 - 192;

use crate::entry::{EntryId, EntryState, MAX_ENTRIES};
use crate::{frank, HandlerCtx, PpcError, PpcSystem};

/// How this call obtained its CD (hold-CD mode needs three states: the
/// call that *pins* the CD must map the stack like a normal call but must
/// not recycle the CD afterwards).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CdHold {
    /// Pool CD: map + unmap + release.
    Pooled,
    /// First call of a hold-CD worker: map + unmap, but keep the CD.
    JustPinned,
    /// Steady-state hold-CD call: no map/unmap, keep the CD.
    Reused,
}

/// How a call was initiated (selects the §4.4 variant behaviour).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// Synchronous PPC: the caller blocks linked into the CD.
    Sync,
    /// Asynchronous PPC: the caller is put on the ready queue instead.
    Async,
    /// Interrupt dispatch: an async request manufactured by the interrupt
    /// handler — there is no calling process at all.
    Interrupt,
    /// Upcall: like interrupt dispatch but triggered by a software event.
    Upcall,
    /// Cross-processor call (§4.3 extension): executes on a remote CPU on
    /// behalf of a caller elsewhere, carrying its program identity.
    Remote(hurricane_os::process::ProgramId),
}

impl PpcSystem {
    /// Synchronous PPC call: `caller` (running on `cpu`) invokes entry
    /// point `ep` with 8 argument words, receiving 8 result words.
    ///
    /// This is the paper's measured fast path. All cycle costs are charged
    /// to `cpu` with Figure-2 category attribution.
    pub fn call(
        &mut self,
        cpu: CpuId,
        caller: Pid,
        ep: EntryId,
        args: [u64; 8],
    ) -> Result<[u64; 8], PpcError> {
        self.call_inner(cpu, Some(caller), ep, args, CallKind::Sync)
    }

    pub(crate) fn call_inner(
        &mut self,
        cpu: CpuId,
        caller: Option<Pid>,
        ep: EntryId,
        args: [u64; 8],
        kind: CallKind,
    ) -> Result<[u64; 8], PpcError> {
        if ep >= MAX_ENTRIES {
            return Err(PpcError::UnknownEntry(ep));
        }
        let from_kernel = {
            let c = self.kernel.machine.cpu_mut(cpu);
            c.mode() == Space::Supervisor
        };

        // ---- client side: user save + trap in --------------------------
        if let (Some(caller_pid), false) = (caller, from_kernel) {
            let ustack = self.kernel.procs[caller_pid].ustack;
            let kstack = self.kernel.kstacks[cpu];
            let stub_code = self.stub_code;
            let c = self.kernel.machine.cpu_mut(cpu);
            c.with_category(CostCategory::UserSaveRestore, |c| {
                c.fetch_code(stub_code);
                let attrs = MemAttrs::cached_private(ustack.base.module());
                // Fig. 4: load opcode/flags, stash return address, spill
                // the live caller-saved registers.
                c.exec(6);
                c.store_words(ustack.at(USER_SAVE_OFF), Process::USER_SAVE_WORDS, attrs);
            });
            trap::enter(c, kstack, CostCategory::PpcKernel);
        }

        // ---- kernel entry: CPU-local service table lookup ---------------
        {
            let table = self.percpu[cpu].table_mem;
            let fastpath_code = self.fastpath_code;
            let c = self.kernel.machine.cpu_mut(cpu);
            c.with_category(CostCategory::PpcKernel, |c| {
                c.fetch_code(fastpath_code);
                let attrs = MemAttrs::cached_private(table.base.module());
                c.load(table.at((ep as u64 * 8) % table.len), attrs);
                c.exec(8); // bounds + opcode decode + state check
            });
        }
        if !self.entries[ep].accepts_calls() {
            let err = match self.entries[ep].state {
                EntryState::Free => PpcError::UnknownEntry(ep),
                _ => PpcError::EntryDead(ep),
            };
            return Err(self.error_return(cpu, caller, from_kernel, err));
        }
        let asid = self.entries[ep].asid;
        let opts = self.entries[ep].opts;
        let kernel_entry = asid == hector_sim::tlb::ASID_KERNEL;
        let service_code = self.entries[ep].service_code;
        self.entries[ep].active_calls += 1;

        // ---- allocate a worker from the CPU-local pool -------------------
        let worker = match self.pop_worker(cpu, ep) {
            Some(w) => w,
            None => {
                self.stats.frank_redirects += 1;
                match frank::refill_worker(self, cpu, ep) {
                    Ok(w) => w,
                    Err(e) => {
                        self.entries[ep].active_calls -= 1;
                        self.raise_exception(cpu, crate::variants::exception::NO_RESOURCES, ep, 0);
                        return Err(self.error_return(cpu, caller, from_kernel, e));
                    }
                }
            }
        };

        // ---- allocate / reuse a CD --------------------------------------
        let (cd, hold) = match self.take_cd(cpu, ep, worker, opts.trust_group, opts.hold_cd) {
            Ok(v) => v,
            Err(e) => {
                // Undo: the worker goes back to its pool, the call fails.
                self.push_worker(cpu, ep, worker);
                self.entries[ep].active_calls -= 1;
                return Err(self.error_return(cpu, caller, from_kernel, e));
            }
        };
        {
            let c = self.kernel.machine.cpu_mut(cpu);
            self.percpu[cpu].cd_pool.store_return_info(c, cd, caller.filter(|_| kind == CallKind::Sync));
        }
        let stack = self.percpu[cpu].cd_pool.cds[cd].stack;
        self.kernel.procs[worker].ustack = stack;

        // ---- async variants: the caller continues instead of blocking ---
        if kind != CallKind::Sync {
            if let Some(caller_pid) = caller {
                // "putting the calling process onto the processor
                // ready-queue rather than linking it into the call
                // descriptor of the worker" (§4.4).
                self.kernel.enqueue_ready(cpu, caller_pid);
            }
        }

        // ---- extra stack pages (§4.5.4 exceptional path) ------------------
        // Lazy-stack services map nothing eagerly; pages fault in on touch.
        let eager_opts = if opts.lazy_stack {
            crate::entry::EntryOptions { stack_pages: 1, ..opts }
        } else {
            opts
        };
        let extra = match self.take_extra_stacks(cpu, ep, worker, &eager_opts, hold == CdHold::Reused) {
            Ok(e) => e,
            Err(e) => {
                // Undo: recycle the CD (unless pinned) and the worker.
                if hold == CdHold::Pooled {
                    let c = self.kernel.machine.cpu_mut(cpu);
                    self.percpu[cpu].cd_pool.release(c, cd);
                }
                self.push_worker(cpu, ep, worker);
                self.entries[ep].active_calls -= 1;
                return Err(self.error_return(cpu, caller, from_kernel, e));
            }
        };

        // ---- map the stack window into the server space ------------------
        if !kernel_entry && hold != CdHold::Reused {
            let hurricane_os::Kernel { spaces, machine, .. } = &mut self.kernel;
            let c = machine.cpu_mut(cpu);
            c.with_category(CostCategory::TlbSetup, |c| {
                spaces[asid as usize].map(c, stack, true, Space::User);
                for page in &extra {
                    spaces[asid as usize].map(c, *page, true, Space::User);
                }
            });
        }

        if !extra.is_empty() {
            self.percpu[cpu].current_extras.insert(worker, extra.clone());
        }

        // ---- hand-off dispatch ------------------------------------------
        match caller {
            Some(caller_pid) => self.kernel.handoff_switch(cpu, caller_pid, worker),
            None => {
                // Interrupt/upcall: no outgoing process state to save, but
                // the worker state must still be loaded.
                let to_pcb = self.kernel.procs[worker].pcb;
                let c = self.kernel.machine.cpu_mut(cpu);
                c.with_category(CostCategory::KernelSaveRestore, |c| {
                    let attrs = MemAttrs::cached_private(to_pcb.base.module());
                    c.load_words(to_pcb.base, Process::SWITCH_STATE_WORDS, attrs);
                });
                if !kernel_entry {
                    let c = self.kernel.machine.cpu_mut(cpu);
                    c.switch_user_as(asid);
                }
                self.kernel.procs[worker].state = ProcState::Running;
            }
        }

        // ---- upcall into the server --------------------------------------
        {
            let kstack = self.kernel.kstacks[cpu];
            let c = self.kernel.machine.cpu_mut(cpu);
            if !kernel_entry {
                trap::exit(c, kstack, CostCategory::PpcKernel);
            }
            // The worker starts executing the server's call-handling code.
            c.with_category(CostCategory::ServerTime, |c| {
                c.fetch_code(service_code);
                // Server prologue: frame setup on the (fresh) worker stack.
                let sattrs = MemAttrs::cached_private(stack.base.module());
                c.store_words(stack.at(stack.len - 16), 3, sattrs);
                c.exec(3);
            });
        }

        let caller_program = match kind {
            CallKind::Remote(p) => p,
            _ => caller.map(|p| self.kernel.procs[p].program_id).unwrap_or(0),
        };
        let ctx = HandlerCtx {
            cpu,
            ep,
            worker,
            caller_program,
            caller,
            args,
            stack,
        };
        let handler = self
            .dispatch_handler(ep, worker)
            .ok_or(PpcError::UnknownEntry(ep))?;
        let rets = handler(self, &ctx);

        // ---- server epilogue + trap back ---------------------------------
        {
            let kstack = self.kernel.kstacks[cpu];
            let c = self.kernel.machine.cpu_mut(cpu);
            c.with_category(CostCategory::ServerTime, |c| {
                let sattrs = MemAttrs::cached_private(stack.base.module());
                c.load_words(stack.at(stack.len - 16), 3, sattrs);
                c.exec(2);
            });
            if !kernel_entry {
                trap::enter(c, kstack, CostCategory::PpcKernel);
            }
        }

        self.entries[ep].active_calls = self.entries[ep].active_calls.saturating_sub(1);

        // A hard kill while the call ran: resources are gone; abort.
        if self.entries[ep].state == EntryState::Dead {
            return Err(self.error_return(cpu, caller, from_kernel, PpcError::Aborted(ep)));
        }

        // ---- unmap the stack window --------------------------------------
        if !kernel_entry && hold != CdHold::Reused {
            let hurricane_os::Kernel { spaces, machine, .. } = &mut self.kernel;
            let c = machine.cpu_mut(cpu);
            c.with_category(CostCategory::TlbSetup, |c| {
                spaces[asid as usize].unmap(c, stack, Space::User);
                for page in &extra {
                    spaces[asid as usize].unmap(c, *page, Space::User);
                }
            });
        }
        self.return_extra_stacks(cpu, extra, hold != CdHold::Pooled);

        self.percpu[cpu].current_extras.remove(&worker);

        // ---- lazy-stack cleanup: unmap + return faulted pages -------------
        if let Some(pages) = self.percpu[cpu].lazy_pages.remove(&worker) {
            if !kernel_entry {
                let hurricane_os::Kernel { spaces, machine, .. } = &mut self.kernel;
                let c = machine.cpu_mut(cpu);
                c.with_category(CostCategory::TlbSetup, |c| {
                    for page in &pages {
                        spaces[asid as usize].unmap(c, *page, Space::User);
                    }
                });
            }
            self.return_extra_stacks(cpu, pages, false);
        }

        // ---- recycle CD and worker ----------------------------------------
        let linked = {
            let c = self.kernel.machine.cpu_mut(cpu);
            self.percpu[cpu].cd_pool.load_return_info(c, cd)
        };
        if hold == CdHold::Pooled {
            let c = self.kernel.machine.cpu_mut(cpu);
            self.percpu[cpu].cd_pool.release(c, cd);
        }
        self.push_worker(cpu, ep, worker);

        // Soft-killed entry that just drained: free it now (§4.5.2).
        if self.entries[ep].state == EntryState::SoftKilled && self.entries[ep].active_calls == 0 {
            crate::kill::reap_entry(self, ep);
        }

        // ---- return to the caller -----------------------------------------
        match linked {
            Some(caller_pid) => {
                self.kernel.handoff_switch(cpu, worker, caller_pid);
                let kstack = self.kernel.kstacks[cpu];
                let ustack = self.kernel.procs[caller_pid].ustack;
                let c = self.kernel.machine.cpu_mut(cpu);
                if !from_kernel {
                    trap::exit(c, kstack, CostCategory::PpcKernel);
                    c.with_category(CostCategory::UserSaveRestore, |c| {
                        let attrs = MemAttrs::cached_private(ustack.base.module());
                        c.load_words(ustack.at(USER_SAVE_OFF), Process::USER_SAVE_WORDS, attrs);
                        c.exec(2);
                    });
                }
                self.kernel.procs[caller_pid].state = ProcState::Running;
            }
            None => {
                // "When the worker completes, the fact that there is no
                // caller waiting is discovered, and another process is
                // selected for execution" (§4.4).
                let c = self.kernel.machine.cpu_mut(cpu);
                c.with_category(CostCategory::PpcKernel, |c| c.exec(4));
                if let Some(next) = self.kernel.dequeue_ready(cpu) {
                    self.kernel.handoff_switch(cpu, worker, next);
                    let kstack = self.kernel.kstacks[cpu];
                    let c = self.kernel.machine.cpu_mut(cpu);
                    if self.kernel.procs[next].asid != hector_sim::tlb::ASID_KERNEL {
                        trap::exit(c, kstack, CostCategory::PpcKernel);
                    }
                    self.kernel.procs[next].state = ProcState::Running;
                }
            }
        }

        match kind {
            CallKind::Sync => self.stats.calls += 1,
            CallKind::Async => self.stats.async_calls += 1,
            CallKind::Interrupt => self.stats.interrupts += 1,
            CallKind::Upcall => self.stats.upcalls += 1,
            CallKind::Remote(_) => self.stats.cross_calls += 1,
        }
        Ok(rets)
    }

    /// Pop a pooled worker for `ep` on `cpu` (charged to `PpcKernel`).
    pub(crate) fn pop_worker(&mut self, cpu: CpuId, ep: EntryId) -> Option<Pid> {
        let pool_mem = self.percpu[cpu].local[ep].as_ref()?.pool_mem;
        {
            let c = self.kernel.machine.cpu_mut(cpu);
            c.with_category(CostCategory::PpcKernel, |c| {
                let attrs = MemAttrs::cached_private(pool_mem.base.module());
                c.load(pool_mem.at(0), attrs); // pool head
                c.exec(2);
            });
        }
        let worker = self.percpu[cpu].local[ep].as_mut()?.pool.pop()?;
        let pcb = self.kernel.procs[worker].pcb;
        let c = self.kernel.machine.cpu_mut(cpu);
        c.with_category(CostCategory::PpcKernel, |c| {
            let attrs = MemAttrs::cached_private(pool_mem.base.module());
            let pattrs = MemAttrs::cached_private(pcb.base.module());
            c.load(pcb.at(0), pattrs); // next-link from the worker PCB
            c.store(pool_mem.at(0), attrs); // new head
            c.exec(2);
        });
        Some(worker)
    }

    /// Return a worker to its pool (charged to `PpcKernel`). If the local
    /// entry has been reaped (hard kill racing the call), the worker is
    /// simply destroyed.
    pub(crate) fn push_worker(&mut self, cpu: CpuId, ep: EntryId, worker: Pid) {
        let Some(local) = self.percpu[cpu].local[ep].as_ref() else {
            self.kernel.procs[worker].state = ProcState::Dead;
            return;
        };
        let pool_mem = local.pool_mem;
        let pcb = self.kernel.procs[worker].pcb;
        {
            let c = self.kernel.machine.cpu_mut(cpu);
            c.with_category(CostCategory::PpcKernel, |c| {
                let attrs = MemAttrs::cached_private(pool_mem.base.module());
                let pattrs = MemAttrs::cached_private(pcb.base.module());
                c.store(pcb.at(0), pattrs); // link = old head
                c.store(pool_mem.at(0), attrs); // head = worker
                c.exec(2);
            });
        }
        self.kernel.procs[worker].state = ProcState::PooledWorker;
        if let Some(local) = self.percpu[cpu].local[ep].as_mut() {
            local.pool.push(worker);
        }
    }

    /// Obtain the CD for this call: the worker's held CD in hold-CD mode
    /// (allocating and pinning one on its first call), otherwise a pool
    /// allocation.
    fn take_cd(
        &mut self,
        cpu: CpuId,
        ep: EntryId,
        worker: Pid,
        group: crate::entry::TrustGroup,
        hold: bool,
    ) -> Result<(CdId, CdHold), PpcError> {
        if hold {
            if let Some(&cd) = self.percpu[cpu].local[ep].as_ref().unwrap().held_cd.get(&worker) {
                // One load to find the held CD pointer in the worker PCB.
                let pcb = self.kernel.procs[worker].pcb;
                let c = self.kernel.machine.cpu_mut(cpu);
                c.with_category(CostCategory::CdManip, |c| {
                    c.load(pcb.at(8), MemAttrs::cached_private(pcb.base.module()));
                });
                return Ok((cd, CdHold::Reused));
            }
        }
        let cd = {
            let c = self.kernel.machine.cpu_mut(cpu);
            self.percpu[cpu].cd_pool.alloc(c, group)
        };
        let cd = match cd {
            Some(cd) => cd,
            None => {
                self.stats.frank_redirects += 1;
                frank::refill_cd(self, cpu, group)?
            }
        };
        if hold {
            // Pin it: record in the worker PCB and the local entry. The
            // stack must also be mapped once, permanently; the map charge
            // happens on this first call via the normal path (held=false).
            let pcb = self.kernel.procs[worker].pcb;
            let c = self.kernel.machine.cpu_mut(cpu);
            c.with_category(CostCategory::CdManip, |c| {
                c.store(pcb.at(8), MemAttrs::cached_private(pcb.base.module()));
            });
            self.percpu[cpu].local[ep].as_mut().unwrap().held_cd.insert(worker, cd);
            return Ok((cd, CdHold::JustPinned));
        }
        Ok((cd, CdHold::Pooled))
    }

    /// Obtain the extra stack pages for a multi-page-stack service
    /// (§4.5.4): pop the per-CPU spare list (charged), creating pages via
    /// Frank when the list is dry. In hold-CD mode the pages are pinned to
    /// the worker on its first call and found again on later ones.
    fn take_extra_stacks(
        &mut self,
        cpu: CpuId,
        ep: EntryId,
        worker: Pid,
        opts: &crate::entry::EntryOptions,
        reused: bool,
    ) -> Result<Vec<hector_sim::sym::Region>, PpcError> {
        let n = opts.stack_pages.saturating_sub(1);
        if n == 0 {
            return Ok(Vec::new());
        }
        if reused {
            // Reusing the pinned CD: the extra pages are pinned alongside.
            let pages = self.percpu[cpu].local[ep]
                .as_ref()
                .and_then(|l| l.held_extra.get(&worker).cloned())
                .unwrap_or_default();
            let pcb = self.kernel.procs[worker].pcb;
            let c = self.kernel.machine.cpu_mut(cpu);
            c.with_category(CostCategory::CdManip, |c| {
                c.load(pcb.at(16), MemAttrs::cached_private(pcb.base.module()));
            });
            return Ok(pages);
        }
        let list_mem = self.percpu[cpu].stack_list_mem;
        let mut pages = Vec::with_capacity(n);
        for _ in 0..n {
            {
                let c = self.kernel.machine.cpu_mut(cpu);
                c.with_category(CostCategory::CdManip, |c| {
                    let attrs = MemAttrs::cached_private(list_mem.base.module());
                    c.load(list_mem.at(0), attrs); // list head
                    c.store(list_mem.at(0), attrs); // new head
                    c.exec(3);
                });
            }
            let page = match self.percpu[cpu].spare_stacks.pop() {
                Some(p) => p,
                None => {
                    // Frank creates a fresh page (slow path).
                    self.stats.frank_redirects += 1;
                    if let Some(cap) = self.limits.max_stack_pages {
                        if self.stats.stack_pages_created >= cap {
                            // Return what we already took before failing.
                            self.return_extra_stacks(cpu, pages, false);
                            return Err(PpcError::NoResources("stack-page cap reached"));
                        }
                    }
                    self.stats.stack_pages_created += 1;
                    let c = self.kernel.machine.cpu_mut(cpu);
                    c.with_category(CostCategory::PpcKernel, |c| c.exec(40));
                    self.kernel.machine.alloc_page_on(cpu, "spare-stack")
                }
            };
            pages.push(page);
        }
        if opts.hold_cd {
            if let Some(l) = self.percpu[cpu].local[ep].as_mut() {
                l.held_extra.insert(worker, pages.clone());
            }
        }
        Ok(pages)
    }

    /// Simulate the worker using `bytes` of its stack, growing downward
    /// from the top of the first page. For lazy-stack services (§4.5.4's
    /// page-fault alternative), first touches beyond the mapped pages take
    /// charged page faults that map pages from the spare list; exceeding
    /// the entry's `stack_pages` limit is a stack overflow. Call from
    /// inside a handler.
    pub fn touch_worker_stack(
        &mut self,
        ctx: &crate::HandlerCtx,
        bytes: u64,
    ) -> Result<(), PpcError> {
        let cpu = ctx.cpu;
        let ep = ctx.ep;
        let opts = self.entries[ep].opts;
        let limit = opts.stack_pages as u64 * 4096;
        if bytes > limit {
            self.raise_exception(cpu, crate::variants::exception::STACK_OVERFLOW, ep, bytes);
            return Err(PpcError::NoResources("stack overflow"));
        }
        let asid = self.entries[ep].asid;
        let kernel_entry = asid == hector_sim::tlb::ASID_KERNEL;
        let first = ctx.stack;
        // Pages 2.. live at descending symbolic addresses? The simulator's
        // stack pages are discontiguous physical pages; logically the
        // worker's frame spans `pages_needed` of them.
        let pages_needed = bytes.div_ceil(4096).max(1) as usize;

        // Fault in missing pages for lazy services.
        if opts.lazy_stack && pages_needed > 1 {
            let have = 1 + self.percpu[cpu].lazy_pages.get(&ctx.worker).map_or(0, |v| v.len());
            for _ in have..pages_needed {
                // The faulting access: trap, fault handler, map a page.
                let kstack = self.kernel.kstacks[cpu];
                {
                    let c = self.kernel.machine.cpu_mut(cpu);
                    trap::enter(c, kstack, CostCategory::Other);
                    c.with_category(CostCategory::Other, |c| c.exec(40)); // fault decode + vm lookup
                }
                let page = match self.percpu[cpu].spare_stacks.pop() {
                    Some(p) => p,
                    None => {
                        self.stats.frank_redirects += 1;
                        if let Some(cap) = self.limits.max_stack_pages {
                            if self.stats.stack_pages_created >= cap {
                                return Err(PpcError::NoResources("stack-page cap reached"));
                            }
                        }
                        self.stats.stack_pages_created += 1;
                        let c = self.kernel.machine.cpu_mut(cpu);
                        c.with_category(CostCategory::Other, |c| c.exec(40));
                        self.kernel.machine.alloc_page_on(cpu, "spare-stack")
                    }
                };
                if !kernel_entry {
                    let hurricane_os::Kernel { spaces, machine, .. } = &mut self.kernel;
                    let c = machine.cpu_mut(cpu);
                    c.with_category(CostCategory::TlbSetup, |c| {
                        spaces[asid as usize].map(c, page, true, Space::User);
                    });
                }
                {
                    let kstack = self.kernel.kstacks[cpu];
                    let c = self.kernel.machine.cpu_mut(cpu);
                    trap::exit(c, kstack, CostCategory::Other);
                }
                self.percpu[cpu].lazy_pages.entry(ctx.worker).or_default().push(page);
            }
        }

        // The accesses themselves: one store per 16 bytes, page 1 first,
        // then the extra pages (whether eager or lazy).
        let extra_pages: Vec<hector_sim::sym::Region> = self.percpu[cpu]
            .lazy_pages
            .get(&ctx.worker)
            .cloned()
            .unwrap_or_default();
        let mut held_extra: Vec<hector_sim::sym::Region> = self.percpu[cpu].local[ep]
            .as_ref()
            .and_then(|l| l.held_extra.get(&ctx.worker).cloned())
            .unwrap_or_default();
        if held_extra.is_empty() {
            if let Some(cur) = self.percpu[cpu].current_extras.get(&ctx.worker) {
                held_extra = cur.clone();
            }
        }
        let c = self.kernel.machine.cpu_mut(cpu);
        c.with_category(CostCategory::ServerTime, |c| {
            let mut remaining = bytes;
            let mut page_idx = 0usize;
            while remaining > 0 {
                let in_page = remaining.min(4096);
                let region = if page_idx == 0 {
                    first
                } else if let Some(r) = extra_pages.get(page_idx - 1) {
                    *r
                } else if let Some(r) = held_extra.get(page_idx - 1) {
                    *r
                } else {
                    first // eager non-held pages: charged against page 1's lines
                };
                let attrs = MemAttrs::cached_private(region.base.module());
                let mut off = region.len;
                while off >= 16 && (region.len - off) < in_page {
                    off -= 16;
                    c.store(region.at(off), attrs);
                }
                remaining -= in_page;
                page_idx += 1;
            }
        });
        Ok(())
    }

    /// Return extra stack pages to the spare list (charged), unless they
    /// are pinned to a hold-CD worker.
    fn return_extra_stacks(
        &mut self,
        cpu: CpuId,
        pages: Vec<hector_sim::sym::Region>,
        keep: bool,
    ) {
        if pages.is_empty() || keep {
            return;
        }
        let list_mem = self.percpu[cpu].stack_list_mem;
        {
            let c = self.kernel.machine.cpu_mut(cpu);
            c.with_category(CostCategory::CdManip, |c| {
                let attrs = MemAttrs::cached_private(list_mem.base.module());
                for _ in 0..pages.len() {
                    c.store(list_mem.at(0), attrs);
                    c.exec(2);
                }
            });
        }
        self.percpu[cpu].spare_stacks.extend(pages);
    }

    /// Charged error return: unwinds the trap and user-save work so that
    /// failed calls cost realistically too.
    fn error_return(
        &mut self,
        cpu: CpuId,
        caller: Option<Pid>,
        from_kernel: bool,
        err: PpcError,
    ) -> PpcError {
        if let (Some(caller_pid), false) = (caller, from_kernel) {
            let kstack = self.kernel.kstacks[cpu];
            let ustack = self.kernel.procs[caller_pid].ustack;
            let c = self.kernel.machine.cpu_mut(cpu);
            c.with_category(CostCategory::PpcKernel, |c| c.exec(6)); // error path
            trap::exit(c, kstack, CostCategory::PpcKernel);
            c.with_category(CostCategory::UserSaveRestore, |c| {
                let attrs = MemAttrs::cached_private(ustack.base.module());
                c.load_words(ustack.at(USER_SAVE_OFF), Process::USER_SAVE_WORDS, attrs);
            });
        }
        err
    }
}

/// A null service handler: the paper's microbenchmark server, which just
/// "saves and restores a few registers". Use for latency measurements.
pub fn null_handler() -> crate::Handler {
    std::rc::Rc::new(|sys: &mut PpcSystem, ctx: &HandlerCtx| {
        let stack = ctx.stack;
        let c = sys.kernel.machine.cpu_mut(ctx.cpu);
        c.with_category(CostCategory::ServerTime, |c| {
            let attrs = MemAttrs::cached_private(stack.base.module());
            c.store_words(stack.at(stack.len - 64), 4, attrs);
            c.exec(4);
            c.load_words(stack.at(stack.len - 64), 4, attrs);
        });
        ctx.args
    })
}
