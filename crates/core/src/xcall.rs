//! Cross-processor PPC calls — the paper's declared future work.
//!
//! §4.3: "Protected procedure calls only deal with the problem of crossing
//! from one address space to another; they do not address how to transfer
//! control between processors. [...] For completeness we do eventually
//! expect to develop a cross-process PPC variant." This module is that
//! variant, built the way Hurricane already moved work across processors:
//! a per-target mailbox in shared memory plus a remote interrupt, with the
//! call dispatched on the target CPU through the ordinary PPC machinery
//! (so the *server* still sees a normal PPC request, with the original
//! caller's program identity).
//!
//! The round trip is deliberately expensive relative to a local call —
//! two interrupt deliveries and 2×(8+2) uncached shared-word transfers —
//! which is exactly why the paper optimizes the local case and reserves
//! cross-processor traffic for devices and low-level OS functions.

use hector_sim::cpu::{CostCategory, CpuId};
use hector_sim::sym::{MemAttrs, Region};
use hurricane_os::process::Pid;

use crate::call::CallKind;
use crate::entry::EntryId;
use crate::{PpcError, PpcSystem};

/// Per-CPU cross-call mailboxes (lazily created, shared uncached memory
/// homed on the *target* CPU's module).
#[derive(Clone, Debug, Default)]
pub struct XCallMailboxes {
    slots: Vec<Option<Region>>,
}

impl XCallMailboxes {
    pub(crate) fn slot(
        &mut self,
        machine: &mut hector_sim::Machine,
        target: CpuId,
    ) -> Region {
        if self.slots.len() <= target {
            self.slots.resize(target + 1, None);
        }
        *self.slots[target].get_or_insert_with(|| {
            machine.alloc_on(target, 256, "xcall-mailbox")
        })
    }
}

impl PpcSystem {
    /// Cross-processor synchronous PPC: `caller` on `from` invokes entry
    /// point `ep` with the call executing on `target` (e.g. the CPU that
    /// owns a device). Charges are applied on both processors: request
    /// transfer + IPI on the sender, interrupt entry + a full PPC dispatch
    /// + reply transfer on the target, reply pickup on the sender.
    pub fn call_remote(
        &mut self,
        from: CpuId,
        caller: Pid,
        target: CpuId,
        ep: EntryId,
        args: [u64; 8],
    ) -> Result<[u64; 8], PpcError> {
        if from == target {
            return self.call(from, caller, ep, args);
        }
        if target >= self.kernel.n_cpus() {
            return Err(PpcError::NoResources("no such target processor"));
        }
        let program = self.kernel.procs[caller].program_id;
        let mailbox = {
            let mut boxes = std::mem::take(&mut self.xcall);
            let slot = boxes.slot(&mut self.kernel.machine, target);
            self.xcall = boxes;
            slot
        };
        let shared = MemAttrs::uncached_shared(target);

        // --- sender: trap, write the request, raise the IPI -------------
        {
            let kstack = self.kernel.kstacks[from];
            let c = self.kernel.machine.cpu_mut(from);
            hurricane_os::trap::enter(c, kstack, CostCategory::Other);
            c.with_category(CostCategory::Other, |c| {
                for i in 0..8 {
                    c.store(mailbox.at(i * 8), shared); // args
                }
                c.store(mailbox.at(64), shared); // ep + program + flags
                c.store(mailbox.at(72), shared); // "request ready" word
                c.exec(12); // compose IPI, write interrupt register
            });
        }

        // --- target: interrupt entry, read request, dispatch ------------
        let rets = {
            let c = self.kernel.machine.cpu_mut(target);
            c.trap_enter();
            c.with_category(CostCategory::Other, |c| {
                for i in 0..8 {
                    c.load(mailbox.at(i * 8), shared);
                }
                c.load(mailbox.at(64), shared);
                c.exec(10);
            });
            let result =
                self.call_inner(target, None, ep, args, CallKind::Remote(program));
            // Reply transfer + completion IPI.
            let c = self.kernel.machine.cpu_mut(target);
            c.with_category(CostCategory::Other, |c| {
                for i in 0..8 {
                    c.store(mailbox.at(128 + i * 8), shared);
                }
                c.store(mailbox.at(192), shared); // "reply ready" word
                c.exec(12);
            });
            c.trap_exit();
            result?
        };

        // --- sender: completion interrupt, read reply, resume -----------
        {
            let kstack = self.kernel.kstacks[from];
            let c = self.kernel.machine.cpu_mut(from);
            c.with_category(CostCategory::Other, |c| {
                for i in 0..8 {
                    c.load(mailbox.at(128 + i * 8), shared);
                }
                c.exec(8);
            });
            hurricane_os::trap::exit(c, kstack, CostCategory::Other);
        }
        Ok(rets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::ServiceSpec;
    use hector_sim::MachineConfig;
    use std::rc::Rc;

    fn setup() -> (PpcSystem, EntryId, Pid) {
        let mut sys = PpcSystem::boot(MachineConfig::hector(4));
        let asid = sys.kernel.create_space("svc");
        let ep = sys
            .bind_entry_boot(
                ServiceSpec::new(asid).name("svc"),
                Rc::new(|_s, ctx| {
                    let mut r = ctx.args;
                    r[0] += u64::from(ctx.caller_program);
                    r
                }),
            )
            .unwrap();
        let prog = sys.kernel.new_program_id();
        let client = sys.new_client(0, prog);
        (sys, ep, client)
    }

    #[test]
    fn remote_call_returns_results_and_identity() {
        let (mut sys, ep, client) = setup();
        let program = sys.kernel.procs[client].program_id as u64;
        let rets = sys.call_remote(0, client, 2, ep, [100, 0, 0, 0, 0, 0, 0, 0]).unwrap();
        assert_eq!(rets[0], 100 + program, "program identity crosses processors");
        assert_eq!(sys.stats.cross_calls, 1);
    }

    #[test]
    fn same_cpu_degenerates_to_local_call() {
        let (mut sys, ep, client) = setup();
        sys.call_remote(0, client, 0, ep, [1; 8]).unwrap();
        assert_eq!(sys.stats.cross_calls, 0, "local path taken");
        assert_eq!(sys.stats.calls, 1);
    }

    #[test]
    fn remote_costs_land_on_both_cpus() {
        let (mut sys, ep, client) = setup();
        let t_from0 = sys.kernel.machine.cpu(0).clock();
        let t_tgt0 = sys.kernel.machine.cpu(2).clock();
        sys.call_remote(0, client, 2, ep, [0; 8]).unwrap();
        assert!(sys.kernel.machine.cpu(0).clock() > t_from0, "sender charged");
        assert!(sys.kernel.machine.cpu(2).clock() > t_tgt0, "target charged");
    }

    #[test]
    fn remote_is_slower_than_local() {
        let (mut sys, ep, client) = setup();
        let (mut sys2, ep2, client2) = setup();
        // Warm both paths.
        for _ in 0..3 {
            sys.call_remote(0, client, 2, ep, [0; 8]).unwrap();
            sys2.call(0, client2, ep2, [0; 8]).unwrap();
        }
        let f0 = sys.kernel.machine.cpu(0).clock();
        let f2 = sys.kernel.machine.cpu(2).clock();
        sys.call_remote(0, client, 2, ep, [0; 8]).unwrap();
        let remote_total = (sys.kernel.machine.cpu(0).clock() - f0)
            + (sys.kernel.machine.cpu(2).clock() - f2);
        let l0 = sys2.kernel.machine.cpu(0).clock();
        sys2.call(0, client2, ep2, [0; 8]).unwrap();
        let local = sys2.kernel.machine.cpu(0).clock() - l0;
        assert!(remote_total > local, "remote {remote_total} !> local {local}");
    }

    #[test]
    fn bad_target_rejected() {
        let (mut sys, ep, client) = setup();
        assert!(matches!(
            sys.call_remote(0, client, 9, ep, [0; 8]),
            Err(PpcError::NoResources(_))
        ));
    }
}
