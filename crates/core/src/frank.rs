//! Frank, the kernel-level PPC resource manager (§4.5.6).
//!
//! "Service entry points are allocated and deallocated with PPC calls to
//! Frank, which has a well-known service ID. Frank is also responsible for
//! handling exceptional PPC conditions. Calls that fail due to a lack of
//! resources (e.g. an empty worker or call descriptor list) are redirected
//! to Frank for handling. [...] Frank is a normal server executing in the
//! kernel address space, and is special only in that all its resources are
//! preallocated, it may not block, and it may not be preempted."
//!
//! (The name Frank was chosen so that Bob, the file server, would not be
//! the only server with an eccentric name.)

use std::rc::Rc;

use hector_sim::cpu::{CostCategory, CpuId};
use hector_sim::tlb::ASID_KERNEL;
use hurricane_os::process::{Pid, ProcState};

use crate::cd::CdId;
use crate::entry::{
    EntryId, EntrySlot, EntryState, LocalEntry, ServiceSpec, TrustGroup, MAX_ENTRIES,
};
use crate::{copy, naming, Handler, PpcError, PpcSystem, COPY_SERVER_EP, FIRST_DYNAMIC_EP, FRANK_EP, NAME_SERVER_EP};

/// Frank opcodes (`args[0]` of a call to [`FRANK_EP`]).
pub mod ops {
    /// No-op (liveness probe).
    pub const NOOP: u64 = 0;
    /// Bind the staged [`super::BindRequest`] to an entry point.
    pub const BIND: u64 = 1;
    /// Soft-kill the entry point in `args[1]`.
    pub const SOFT_KILL: u64 = 2;
    /// Hard-kill the entry point in `args[1]`.
    pub const HARD_KILL: u64 = 3;
    /// Exchange: replace the handler of `args[1]` with the staged bind.
    pub const EXCHANGE: u64 = 4;
}

/// A staged service-registration request (closures cannot ride in the 8
/// register words, so they wait here while the PPC call to Frank carries
/// the opcode).
pub struct BindRequest {
    /// The service specification.
    pub spec: ServiceSpec,
    /// The handler to bind.
    pub handler: Handler,
}

/// Install Frank, the Name Server, and the Copy Server at boot with
/// preallocated resources on every processor.
pub fn install_wellknown_servers(sys: &mut PpcSystem) {
    let frank_spec = ServiceSpec::new(ASID_KERNEL)
        .name("frank")
        .at(FRANK_EP)
        .initial_workers(2);
    sys.bind_entry_boot(frank_spec, frank_handler()).expect("frank binds at boot");

    let ns_spec = ServiceSpec::new(ASID_KERNEL).name("name-server").at(NAME_SERVER_EP);
    sys.bind_entry_boot(ns_spec, naming::name_server_handler()).expect("name server binds");

    let cs_spec = ServiceSpec::new(ASID_KERNEL).name("copy-server").at(COPY_SERVER_EP);
    sys.bind_entry_boot(cs_spec, copy::copy_server_handler()).expect("copy server binds");
}

/// Frank's call handler.
fn frank_handler() -> Handler {
    Rc::new(|sys: &mut PpcSystem, ctx: &crate::HandlerCtx| {
        // Frank's own bookkeeping work.
        let c = sys.kernel.machine.cpu_mut(ctx.cpu);
        c.with_category(CostCategory::ServerTime, |c| c.exec(20));
        match ctx.args[0] {
            ops::NOOP => [0; 8],
            ops::BIND => match sys.pending_bind.take() {
                Some(req) => match do_bind(sys, ctx.cpu, req.spec, req.handler, true) {
                    Ok(ep) => [ep as u64, 0, 0, 0, 0, 0, 0, 0],
                    Err(_) => [u64::MAX, 1, 0, 0, 0, 0, 0, 0],
                },
                None => [u64::MAX, 2, 0, 0, 0, 0, 0, 0],
            },
            ops::SOFT_KILL => {
                let ep = ctx.args[1] as EntryId;
                match crate::kill::soft_kill(sys, ctx.cpu, ep, ctx.caller_program) {
                    Ok(()) => [0; 8],
                    Err(_) => [u64::MAX, 1, 0, 0, 0, 0, 0, 0],
                }
            }
            ops::HARD_KILL => {
                let ep = ctx.args[1] as EntryId;
                match crate::kill::hard_kill(sys, ctx.cpu, ep, ctx.caller_program) {
                    Ok(()) => [0; 8],
                    Err(_) => [u64::MAX, 1, 0, 0, 0, 0, 0, 0],
                }
            }
            ops::EXCHANGE => {
                let ep = ctx.args[1] as EntryId;
                match sys.pending_bind.take() {
                    Some(req) => {
                        match crate::kill::exchange(sys, ctx.cpu, ep, req.handler, ctx.caller_program)
                        {
                            Ok(()) => [0; 8],
                            Err(_) => [u64::MAX, 1, 0, 0, 0, 0, 0, 0],
                        }
                    }
                    None => [u64::MAX, 2, 0, 0, 0, 0, 0, 0],
                }
            }
            _ => [u64::MAX, 0xbad, 0, 0, 0, 0, 0, 0],
        }
    })
}

impl PpcSystem {
    /// Bind a service at boot (uncharged). Programs running on the booted
    /// system use [`PpcSystem::register_service`] instead, which goes
    /// through a real PPC call to Frank.
    pub fn bind_entry_boot(
        &mut self,
        spec: ServiceSpec,
        handler: Handler,
    ) -> Result<EntryId, PpcError> {
        do_bind(self, 0, spec, handler, false)
    }

    /// Register a service the way a real program does: stage the bind
    /// request and PPC-call Frank (§4.5.5: "it must first obtain an unused
    /// entry point ID and call a special server to bind this ID to its
    /// call handling routine").
    pub fn register_service(
        &mut self,
        cpu: CpuId,
        caller: Pid,
        spec: ServiceSpec,
        handler: Handler,
    ) -> Result<EntryId, PpcError> {
        self.pending_bind = Some(BindRequest { spec, handler });
        let rets = self.call(cpu, caller, FRANK_EP, [ops::BIND, 0, 0, 0, 0, 0, 0, 0])?;
        if rets[0] == u64::MAX {
            return Err(PpcError::TableFull);
        }
        Ok(rets[0] as EntryId)
    }
}

/// The actual bind: claim a slot, install global metadata and the handler,
/// and build per-processor state (pool memory plus `initial_workers`
/// pre-created workers on every CPU).
pub(crate) fn do_bind(
    sys: &mut PpcSystem,
    cpu: CpuId,
    spec: ServiceSpec,
    handler: Handler,
    charged: bool,
) -> Result<EntryId, PpcError> {
    let ep = match spec.want_ep {
        Some(ep) => {
            if ep >= MAX_ENTRIES {
                return Err(PpcError::UnknownEntry(ep));
            }
            if sys.entries[ep].state != EntryState::Free {
                return Err(PpcError::TableFull);
            }
            ep
        }
        None => sys
            .entries
            .iter()
            .enumerate()
            .skip(FIRST_DYNAMIC_EP)
            .find(|(_, e)| e.state == EntryState::Free)
            .map(|(i, _)| i)
            .ok_or(PpcError::TableFull)?,
    };

    let service_code = sys.kernel.machine.alloc_on(cpu % sys.kernel.n_cpus(), 128, "service-code");
    sys.entries[ep] = EntrySlot {
        state: EntryState::Active,
        asid: spec.asid,
        opts: spec.opts,
        service_code,
        active_calls: 0,
        owner: spec.owner,
        name: spec.name.clone(),
    };
    sys.set_handler(ep, handler);

    let n = sys.kernel.n_cpus();
    for c in 0..n {
        let pool_mem = sys.kernel.machine.alloc_on(c, 64, "worker-pool");
        let mut local = LocalEntry::new(pool_mem);
        for _ in 0..spec.opts.initial_workers {
            let w = if charged && c == cpu {
                sys.kernel.create_process_charged(c, spec.asid, spec.owner)
            } else {
                sys.kernel.create_process_boot(spec.asid, c, spec.owner)
            };
            sys.kernel.procs[w].state = ProcState::PooledWorker;
            local.pool.push(w);
            local.workers_created += 1;
        }
        sys.percpu[c].local[ep] = Some(local);
    }
    if charged {
        // Registration bookkeeping: global slot + per-CPU table updates.
        let c = sys.kernel.machine.cpu_mut(cpu);
        c.with_category(CostCategory::ServerTime, |c| c.exec(60 + 10 * n as u64));
    }
    Ok(ep)
}

/// Slow path: the worker pool for `ep` on `cpu` is empty. The call is
/// redirected to Frank, who creates a new worker, initializes it for the
/// target entry point, and forwards the call. Returns the fresh worker,
/// or `NoResources` when the worker cap has been reached.
pub(crate) fn refill_worker(
    sys: &mut PpcSystem,
    cpu: CpuId,
    ep: EntryId,
) -> Result<Pid, PpcError> {
    let asid = sys.entries[ep].asid;
    let owner = sys.entries[ep].owner;
    {
        let c = sys.kernel.machine.cpu_mut(cpu);
        // Redirection: re-dispatch the trapped call to Frank's entry.
        c.with_category(CostCategory::PpcKernel, |c| c.exec(30));
    }
    if let Some(cap) = sys.limits.max_workers {
        if sys.stats.workers_created >= cap {
            return Err(PpcError::NoResources("worker cap reached"));
        }
    }
    let w = sys.kernel.create_process_charged(cpu, asid, owner);
    {
        let c = sys.kernel.machine.cpu_mut(cpu);
        // Frank initializes the worker for the particular target entry
        // point (entry PC, initial handler) and forwards the call.
        c.with_category(CostCategory::ServerTime, |c| c.exec(60));
    }
    sys.kernel.procs[w].state = ProcState::PooledWorker;
    if let Some(local) = sys.percpu[cpu].local[ep].as_mut() {
        local.workers_created += 1;
    }
    sys.stats.workers_created += 1;
    Ok(w)
}

/// Slow path: the CD pool (trust group `group`) on `cpu` is dry. Frank
/// creates a new CD + stack page and hands it to the waiting call, or
/// reports `NoResources` when the CD cap has been reached.
pub(crate) fn refill_cd(
    sys: &mut PpcSystem,
    cpu: CpuId,
    group: TrustGroup,
) -> Result<CdId, PpcError> {
    {
        let c = sys.kernel.machine.cpu_mut(cpu);
        c.with_category(CostCategory::PpcKernel, |c| c.exec(30));
    }
    if let Some(cap) = sys.limits.max_cds {
        if sys.stats.cds_created >= cap {
            return Err(PpcError::NoResources("call-descriptor cap reached"));
        }
    }
    let cd = sys.percpu[cpu].cd_pool.create_charged(&mut sys.kernel.machine, group);
    sys.stats.cds_created += 1;
    Ok(cd)
}
