//! # ppc-core — the Protected Procedure Call IPC facility
//!
//! This crate is the reproduction of the paper's contribution: a
//! shared-memory multiprocessor IPC facility that **in the common case
//! accesses no shared data and acquires no locks**, built on the
//! [`hurricane_os`] substrate.
//!
//! A PPC call conceptually moves the client into the server's address
//! space. The implementation (paper §2) instead allocates, from pools that
//! are **exclusively owned by the calling processor**:
//!
//! * a **worker process** from the target entry point's per-processor pool,
//! * a **call descriptor (CD)** from the per-processor CD pool shared by
//!   all servers on that processor; the CD stores the return linkage and
//!   points at the physical page used as the worker's stack.
//!
//! The stack page is mapped into the server's address space, the worker is
//! dispatched with hand-off scheduling (no ready-queue pass), the server's
//! handler runs with 8 argument words in registers, and the return path
//! unmaps the stack and recycles CD and worker. No step touches memory
//! written by another processor; no step takes a lock.
//!
//! The crate also implements everything the paper builds around that core:
//! [`frank`] (the kernel-level resource manager that owns every slow
//! path), [`naming`] (the Name Server and small-integer entry-point IDs),
//! [`auth`] (program-ID authentication, separated from naming per §4.1),
//! [`copy`] (CopyTo/CopyFrom bulk data with V-style region permissions),
//! [`variants`] (asynchronous calls, interrupt dispatch, upcalls),
//! [`kill`] (soft/hard entry-point destruction and `Exchange`), and
//! [`bob`] (the file server used by the paper's Figure 3 experiment).
//!
//! ## Quick example
//!
//! ```
//! use ppc_core::{PpcSystem, ServiceSpec};
//! use hector_sim::MachineConfig;
//! use std::rc::Rc;
//!
//! let mut sys = PpcSystem::boot(MachineConfig::hector(2));
//! // A user-space echo server.
//! let asid = sys.kernel.create_space("echo");
//! let ep = sys
//!     .bind_entry_boot(ServiceSpec::new(asid).name("echo"), Rc::new(|_sys, ctx| ctx.args))
//!     .unwrap();
//! let prog = sys.kernel.new_program_id();
//! let client = sys.new_client(0, prog);
//! let rets = sys.call(0, client, ep, [1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
//! assert_eq!(rets, [1, 2, 3, 4, 5, 6, 7, 8]);
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use hector_sim::cpu::CpuId;
use hector_sim::sym::Region;
use hector_sim::tlb::{Asid, ASID_KERNEL};
use hector_sim::MachineConfig;
use hurricane_os::process::{Pid, ProcState, ProgramId};
use hurricane_os::Kernel;

pub mod auth;
pub mod bob;
pub mod call;
pub mod cd;
pub mod copy;
pub mod entry;
pub mod frank;
pub mod kill;
pub mod microbench;
pub mod naming;
pub mod variants;
pub mod xcall;

pub use auth::Acl;
pub use cd::{CdId, CdPool};
pub use entry::{EntryId, EntryOptions, EntrySlot, EntryState, LocalEntry, ServiceSpec, MAX_ENTRIES};
pub use naming::NameTable;

/// Frank's well-known entry point (§4.5.6).
pub const FRANK_EP: EntryId = 0;
/// The Name Server's well-known entry point (§4.5.5).
pub const NAME_SERVER_EP: EntryId = 1;
/// The Copy Server's well-known entry point (§4.2).
pub const COPY_SERVER_EP: EntryId = 2;
/// First entry point available to ordinary services.
pub const FIRST_DYNAMIC_EP: EntryId = 3;

/// Errors a PPC operation can report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PpcError {
    /// The entry-point ID is out of range or unbound.
    UnknownEntry(EntryId),
    /// The entry point has been (soft- or hard-) killed.
    EntryDead(EntryId),
    /// The call was aborted by a hard kill while in progress.
    Aborted(EntryId),
    /// Resource exhaustion that even Frank could not resolve.
    NoResources(&'static str),
    /// The server denied the caller (program-ID authentication).
    PermissionDenied(ProgramId),
    /// The entry-point table is full (the paper caps it at 1024).
    TableFull,
    /// A bulk-copy request referenced memory without a matching grant.
    NoGrant,
}

impl std::fmt::Display for PpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PpcError::UnknownEntry(ep) => write!(f, "unknown entry point {ep}"),
            PpcError::EntryDead(ep) => write!(f, "entry point {ep} is dead"),
            PpcError::Aborted(ep) => write!(f, "call aborted by hard kill of entry {ep}"),
            PpcError::NoResources(what) => write!(f, "out of resources: {what}"),
            PpcError::PermissionDenied(p) => write!(f, "permission denied for program {p}"),
            PpcError::TableFull => write!(f, "service entry point table full"),
            PpcError::NoGrant => write!(f, "no copy grant covers the requested region"),
        }
    }
}

impl std::error::Error for PpcError {}

/// Context passed to a service handler for one call.
#[derive(Clone, Debug)]
pub struct HandlerCtx {
    /// Processor the call executes on (always the caller's processor).
    pub cpu: CpuId,
    /// The entry point being invoked.
    pub ep: EntryId,
    /// The worker process servicing the call.
    pub worker: Pid,
    /// Program ID of the caller — the authentication identity (§4.1).
    pub caller_program: ProgramId,
    /// The calling process; `None` for asynchronous/interrupt variants.
    pub caller: Option<Pid>,
    /// The 8 argument words (passed in registers: no memory traffic).
    pub args: [u64; 8],
    /// The worker's stack page for this call.
    pub stack: Region,
}

/// A service handler. Handlers receive the whole system so they can charge
/// cycles, keep state (via captured `Rc<RefCell<..>>`), and make nested PPC
/// calls; they return the 8 result words (in registers).
pub type Handler = Rc<dyn Fn(&mut PpcSystem, &HandlerCtx) -> [u64; 8]>;

/// Outcome record of an asynchronous PPC (for tests and examples; the real
/// system discards results when no caller waits).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsyncOutcome {
    /// Entry point invoked.
    pub ep: EntryId,
    /// Result words the worker produced (discarded in the real system).
    pub rets: [u64; 8],
    /// Whether a caller was waiting (always `false` for pure async).
    pub caller_waited: bool,
}

/// Per-processor PPC state: the service table copy and the CD pool —
/// everything a common-case call needs, in CPU-local memory.
#[derive(Clone, Debug)]
pub struct PpcCpu {
    /// Symbolic memory of this CPU's service-table copy ("as little as a
    /// single pointer per service entry point per processor").
    pub table_mem: Region,
    /// Fast-path per-entry state, indexed by `EntryId`.
    pub local: Vec<Option<LocalEntry>>,
    /// The per-processor call-descriptor pool.
    pub cd_pool: CdPool,
    /// Independent list of spare stack pages for services that need
    /// multi-page stacks (§4.5.4's proposed exceptional path).
    pub spare_stacks: Vec<Region>,
    /// Symbolic memory of the spare-stack list head (CPU-local).
    pub stack_list_mem: Region,
    /// Pages faulted in by lazy-stack workers during the current call
    /// (drained and returned on call exit).
    pub lazy_pages: HashMap<Pid, Vec<Region>>,
    /// Eagerly-mapped extra pages of in-flight calls, so stack touches
    /// inside handlers resolve to the real pages.
    pub current_extras: HashMap<Pid, Vec<Region>>,
}

/// The PPC facility, bound to a booted Hurricane kernel.
pub struct PpcSystem {
    /// The underlying OS substrate.
    pub kernel: Kernel,
    /// Per-processor fast-path state.
    pub percpu: Vec<PpcCpu>,
    /// Global entry-point metadata (slow path / Frank only).
    pub entries: Vec<EntrySlot>,
    handlers: Vec<Option<Handler>>,
    /// Per-worker handler overrides (worker initialization, §4.5.3).
    worker_handlers: HashMap<Pid, Handler>,
    /// The name table served by the Name Server.
    pub naming: Rc<RefCell<NameTable>>,
    /// Copy-server grant table (interior read-mostly locking; no
    /// `RefCell` so concurrent authorization checks never exclude each
    /// other).
    pub grants: Rc<copy::GrantTable>,
    /// Log of asynchronous call outcomes (diagnostics/tests).
    pub async_log: Vec<AsyncOutcome>,
    /// Staging area for Frank-mediated service registration: registers
    /// cannot carry a closure, so the bind request rides here while the
    /// actual PPC call to Frank carries the entry metadata.
    pub(crate) pending_bind: Option<frank::BindRequest>,
    /// Monotonic counters for the facility (diagnostics).
    pub stats: FacilityStats,
    /// Caps on dynamic resource creation (failure injection / hardening).
    pub limits: ResourceLimits,
    /// The registered exception server (§4.4 upcall target), if any.
    pub(crate) exception_ep: Option<EntryId>,
    /// Cross-processor call mailboxes (§4.3 extension).
    pub(crate) xcall: xcall::XCallMailboxes,
    /// Symbolic code region of the client-side call stub (Fig. 4).
    pub(crate) stub_code: Region,
    /// Symbolic code region of the kernel fastpath ("only 200
    /// instructions ... complete most calls" — a few hundred bytes of
    /// straight-line code plus small loops).
    pub(crate) fastpath_code: Region,
}

/// Hard caps on dynamically-created PPC resources. `None` = unlimited
/// (the paper's system; real deployments bound kernel memory). When a cap
/// is hit, the Frank slow path fails and the call reports
/// [`PpcError::NoResources`] — the redirect-to-Frank contract of §4.5.6
/// exercised to its failure edge.
#[derive(Clone, Copy, Debug, Default)]
pub struct ResourceLimits {
    /// Maximum workers Frank may create (beyond boot-time pools).
    pub max_workers: Option<u64>,
    /// Maximum CDs Frank may create (beyond boot-time pools).
    pub max_cds: Option<u64>,
    /// Maximum spare stack pages Frank may create.
    pub max_stack_pages: Option<u64>,
}

/// Facility-wide counters.
#[derive(Clone, Debug, Default)]
pub struct FacilityStats {
    /// Completed synchronous calls.
    pub calls: u64,
    /// Completed asynchronous calls.
    pub async_calls: u64,
    /// Slow-path redirections to Frank (pool refills).
    pub frank_redirects: u64,
    /// Workers created dynamically by Frank.
    pub workers_created: u64,
    /// CDs created dynamically by Frank.
    pub cds_created: u64,
    /// Spare stack pages created dynamically by Frank (§4.5.4 services).
    pub stack_pages_created: u64,
    /// Cross-processor PPC calls (§4.3 extension).
    pub cross_calls: u64,
    /// Interrupt dispatches.
    pub interrupts: u64,
    /// Upcalls.
    pub upcalls: u64,
}

impl PpcSystem {
    /// Boot a PPC system: boots the kernel, builds the per-processor PPC
    /// state, and installs the three well-known kernel-level servers
    /// (Frank, the Name Server, the Copy Server) with preallocated
    /// resources on every processor.
    pub fn boot(cfg: MachineConfig) -> Self {
        let mut kernel = Kernel::boot(cfg);
        let n = kernel.n_cpus();
        let stub_code = kernel.machine.alloc_on(0, 64, "ppc-stub-code");
        let fastpath_code = kernel.machine.alloc_on(0, 224, "ppc-fastpath-code");
        let mut sys = PpcSystem {
            kernel,
            percpu: Vec::with_capacity(n),
            entries: (0..MAX_ENTRIES).map(|_| EntrySlot::free()).collect(),
            handlers: (0..MAX_ENTRIES).map(|_| None).collect(),
            worker_handlers: HashMap::new(),
            naming: Rc::new(RefCell::new(NameTable::new())),
            grants: Rc::new(copy::GrantTable::new()),
            async_log: Vec::new(),
            pending_bind: None,
            stats: FacilityStats::default(),
            limits: ResourceLimits::default(),
            exception_ep: None,
            xcall: xcall::XCallMailboxes::default(),
            stub_code,
            fastpath_code,
        };
        for c in 0..n {
            let table_mem = sys.kernel.machine.alloc_on(c, (MAX_ENTRIES * 8) as u64, "ppc-table");
            let cd_pool = CdPool::boot(&mut sys.kernel.machine, c, cd::INITIAL_CDS);
            let stack_list_mem = sys.kernel.machine.alloc_on(c, 64, "stack-list");
            sys.percpu.push(PpcCpu {
                table_mem,
                local: (0..MAX_ENTRIES).map(|_| None).collect(),
                cd_pool,
                spare_stacks: Vec::new(),
                stack_list_mem,
                lazy_pages: HashMap::new(),
                current_extras: HashMap::new(),
            });
        }
        frank::install_wellknown_servers(&mut sys);
        sys
    }

    /// Convenience: create a client process on `cpu` belonging to a fresh
    /// user address space (boot-time, uncharged).
    pub fn new_client(&mut self, cpu: CpuId, program: ProgramId) -> Pid {
        let asid = self.kernel.create_space(&format!("client-p{program}"));
        let pid = self.kernel.create_process_boot(asid, cpu, program);
        self.kernel.procs[pid].state = ProcState::Running;
        pid
    }

    /// The handler bound to `ep`, if any (worker overrides take precedence
    /// at dispatch time, not here).
    pub fn handler(&self, ep: EntryId) -> Option<Handler> {
        self.handlers.get(ep).and_then(|h| h.clone())
    }

    pub(crate) fn set_handler(&mut self, ep: EntryId, h: Handler) {
        self.handlers[ep] = Some(h);
    }

    pub(crate) fn clear_handler(&mut self, ep: EntryId) {
        self.handlers[ep] = None;
    }

    /// Install a per-worker handler override — the §4.5.3 worker
    /// initialization pattern: a worker's first call enters the
    /// initialization routine, which calls this to replace *its own*
    /// handling routine for subsequent calls.
    pub fn set_worker_handler(&mut self, worker: Pid, h: Handler) {
        self.worker_handlers.insert(worker, h);
    }

    /// Remove a worker's handler override.
    pub fn clear_worker_handler(&mut self, worker: Pid) {
        self.worker_handlers.remove(&worker);
    }

    pub(crate) fn dispatch_handler(&self, ep: EntryId, worker: Pid) -> Option<Handler> {
        self.worker_handlers.get(&worker).cloned().or_else(|| self.handler(ep))
    }

    /// The address space of entry `ep`.
    pub fn entry_asid(&self, ep: EntryId) -> Option<Asid> {
        self.entries.get(ep).and_then(|e| {
            if e.state == EntryState::Free {
                None
            } else {
                Some(e.asid)
            }
        })
    }

    /// Whether `ep` is a kernel-space service (cheaper call path: no user
    /// TLB context switch, no extra trap pair).
    pub fn is_kernel_entry(&self, ep: EntryId) -> bool {
        self.entry_asid(ep) == Some(ASID_KERNEL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_installs_wellknown_servers() {
        let sys = PpcSystem::boot(MachineConfig::hector(2));
        assert_eq!(sys.entries[FRANK_EP].state, EntryState::Active);
        assert_eq!(sys.entries[NAME_SERVER_EP].state, EntryState::Active);
        assert_eq!(sys.entries[COPY_SERVER_EP].state, EntryState::Active);
        assert!(sys.is_kernel_entry(FRANK_EP));
        assert_eq!(sys.percpu.len(), 2);
        // Every CPU has fast-path state for the well-known servers.
        for c in 0..2 {
            assert!(sys.percpu[c].local[FRANK_EP].is_some());
            assert!(sys.percpu[c].local[NAME_SERVER_EP].is_some());
        }
    }

    #[test]
    fn error_display() {
        let e = PpcError::UnknownEntry(7);
        assert!(format!("{e}").contains("7"));
        let e = PpcError::NoResources("workers");
        assert!(format!("{e}").contains("workers"));
    }
}
