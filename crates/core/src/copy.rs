//! Bulk data transfer: the Copy Server (§4.2).
//!
//! The PPC transfers exactly 8 words each way in registers. For larger
//! data "we provide a mechanism borrowed from the V system where a caller
//! may give permission to the server to read and write selected portions
//! of its address space. The actual transfer of data is done by a separate
//! CopyTo or CopyFrom request" — themselves normal PPC requests to the
//! Copy Server at [`crate::COPY_SERVER_EP`].

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use hector_sim::cpu::{CostCategory, CpuId};
use hector_sim::sym::{MemAttrs, PAddr, Region};
use hurricane_os::process::{Pid, ProgramId};

use crate::entry::EntryId;
use crate::{Handler, PpcError, PpcSystem, COPY_SERVER_EP};

/// Copy Server opcodes.
pub mod ops {
    /// Grant the entry in `args[1]` access to `[args[2], args[2]+args[3])`;
    /// `args[4]` nonzero grants write access too.
    pub const GRANT: u64 = 1;
    /// Revoke all grants from the caller to the entry in `args[1]`.
    pub const REVOKE: u64 = 2;
    /// Copy `args[4]` bytes from server memory `args[3]` **to** client
    /// (`args[1]` = granter program) memory `args[2]`.
    pub const COPY_TO: u64 = 3;
    /// Copy `args[4]` bytes **from** client memory `args[2]` to server
    /// memory `args[3]`.
    pub const COPY_FROM: u64 = 4;
}

/// Largest single transfer (sanity cap; the paper's servers use
/// service-specific shared-memory paths for truly bulk data).
pub const MAX_COPY: u64 = 1 << 20;

/// One region permission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grant {
    /// The granting (client) program.
    pub granter: ProgramId,
    /// The entry point allowed to access the region.
    pub grantee: EntryId,
    /// Program owning `grantee` at grant time.
    pub grantee_program: ProgramId,
    /// The client region covered.
    pub region: Region,
    /// Whether writes (CopyTo) are allowed.
    pub write: bool,
}

/// The Copy Server's grant table.
///
/// Authorization (one check per CopyTo/CopyFrom) vastly outnumbers
/// grant/revoke, so the table is a **read-mostly** structure: lookups take
/// a shared `RwLock` read — any number of concurrent copy checks proceed
/// without excluding each other — and only the rare mutations take the
/// exclusive write side. Grants are indexed `granter → grantee → [Grant]`,
/// which doubles as an O(1) revoke index: revoking `(granter, grantee)`
/// removes one nested map entry instead of scanning every grant in the
/// system (the old single flat `Vec` did a full retain per revoke *and*
/// a full scan per authorization).
///
/// A generation counter stamps every mutation, so cached authorization
/// decisions can be cheaply re-validated (`generation` unchanged ⇒ the
/// decision still stands) — the same epoch discipline `ppc-rt`'s region
/// registry uses per slot.
#[derive(Debug, Default)]
pub struct GrantTable {
    /// `granter → grantee → live grants` behind the read-mostly lock.
    map: RwLock<HashMap<ProgramId, HashMap<EntryId, Vec<Grant>>>>,
    /// Bumped once per successful mutation (add or effective revoke).
    generation: AtomicU64,
}

impl GrantTable {
    /// Empty table.
    pub fn new() -> Self {
        GrantTable::default()
    }

    /// Record a grant. Takes the exclusive lock (cold path).
    pub fn add(&self, g: Grant) {
        self.map
            .write()
            .expect("grant table lock poisoned")
            .entry(g.granter)
            .or_default()
            .entry(g.grantee)
            .or_default()
            .push(g);
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Remove every grant `granter -> grantee`: one O(1) indexed removal,
    /// no scan over unrelated grants.
    pub fn revoke(&self, granter: ProgramId, grantee: EntryId) -> usize {
        let mut map = self.map.write().expect("grant table lock poisoned");
        let Some(per_granter) = map.get_mut(&granter) else { return 0 };
        let removed = per_granter.remove(&grantee).map_or(0, |v| v.len());
        if per_granter.is_empty() {
            map.remove(&granter);
        }
        drop(map);
        if removed > 0 {
            self.generation.fetch_add(1, Ordering::Release);
        }
        removed
    }

    /// Does a grant authorize `accessor_program` to touch
    /// `[base, base+len)` of `granter`'s memory (write if `write`)?
    ///
    /// Shared-lock read; scans only `granter`'s grants. All span
    /// arithmetic is `checked_add`: a query or grant whose `base + len`
    /// would wrap denies instead of wrapping into a false authorization.
    /// Zero-length spans are permitted anywhere in `[base, end]`
    /// inclusive — a zero-byte transfer at the exact end of a region is
    /// legal.
    pub fn authorizes(
        &self,
        granter: ProgramId,
        accessor_program: ProgramId,
        base: PAddr,
        len: u64,
        write: bool,
    ) -> bool {
        let Some(q_end) = base.0.checked_add(len) else { return false };
        let map = self.map.read().expect("grant table lock poisoned");
        let Some(per_granter) = map.get(&granter) else { return false };
        per_granter.values().flatten().any(|g| {
            g.grantee_program == accessor_program
                && (!write || g.write)
                && base.0 >= g.region.base.0
                && g.region
                    .base
                    .0
                    .checked_add(g.region.len)
                    .is_some_and(|g_end| q_end <= g_end)
        })
    }

    /// Number of live grants.
    pub fn len(&self) -> usize {
        self.map
            .read()
            .expect("grant table lock poisoned")
            .values()
            .flat_map(|per| per.values())
            .map(|v| v.len())
            .sum()
    }

    /// Whether no grants exist.
    pub fn is_empty(&self) -> bool {
        self.map.read().expect("grant table lock poisoned").is_empty()
    }

    /// The mutation generation: unchanged between two reads ⇒ no grant
    /// was added or revoked in between, so any authorization decision
    /// made at the first read still holds at the second.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }
}

/// The Copy Server handler.
pub fn copy_server_handler() -> Handler {
    Rc::new(|sys: &mut PpcSystem, ctx: &crate::HandlerCtx| {
        let grants = Rc::clone(&sys.grants);
        match ctx.args[0] {
            ops::GRANT => {
                let c = sys.kernel.machine.cpu_mut(ctx.cpu);
                c.with_category(CostCategory::ServerTime, |c| c.exec(30));
                let grantee = ctx.args[1] as EntryId;
                let Some(grantee_program) =
                    sys.entries.get(grantee).map(|e| e.owner).filter(|_| {
                        sys.entries.get(grantee).is_some_and(|e| e.accepts_calls())
                    })
                else {
                    return [u64::MAX, 1, 0, 0, 0, 0, 0, 0];
                };
                grants.add(Grant {
                    granter: ctx.caller_program,
                    grantee,
                    grantee_program,
                    region: Region { base: PAddr(ctx.args[2]), len: ctx.args[3] },
                    write: ctx.args[4] != 0,
                });
                [0; 8]
            }
            ops::REVOKE => {
                let c = sys.kernel.machine.cpu_mut(ctx.cpu);
                c.with_category(CostCategory::ServerTime, |c| c.exec(25));
                let n = grants.revoke(ctx.caller_program, ctx.args[1] as EntryId);
                [0, n as u64, 0, 0, 0, 0, 0, 0]
            }
            ops::COPY_TO | ops::COPY_FROM => {
                let write_client = ctx.args[0] == ops::COPY_TO;
                let granter = ctx.args[1] as ProgramId;
                let client_base = PAddr(ctx.args[2]);
                let server_base = PAddr(ctx.args[3]);
                let len = ctx.args[4].min(MAX_COPY);
                let authorized = {
                    let c = sys.kernel.machine.cpu_mut(ctx.cpu);
                    c.with_category(CostCategory::ServerTime, |c| c.exec(35)); // grant scan
                    grants.authorizes(
                        granter,
                        ctx.caller_program,
                        client_base,
                        len,
                        write_client,
                    )
                };
                if !authorized {
                    return [u64::MAX, 2, 0, 0, 0, 0, 0, 0];
                }
                charge_copy(sys, ctx.cpu, client_base, server_base, len, write_client);
                [0, len, 0, 0, 0, 0, 0, 0]
            }
            _ => [u64::MAX, 0xbad, 0, 0, 0, 0, 0, 0],
        }
    })
}

/// Charge a physical copy of `len` bytes between the client and server
/// regions (word loads + stores; both sides are local to the calling CPU
/// in the common case — the client called on this CPU and the worker stack
/// and buffers are CPU-local).
fn charge_copy(
    sys: &mut PpcSystem,
    cpu: CpuId,
    client: PAddr,
    server: PAddr,
    len: u64,
    write_client: bool,
) {
    let c = sys.kernel.machine.cpu_mut(cpu);
    c.with_category(CostCategory::ServerTime, |c| {
        let ca = MemAttrs::cached_private(client.module());
        let sa = MemAttrs::cached_private(server.module());
        let words = len / 4;
        for i in 0..words {
            if write_client {
                c.load(server.offset(i * 4), sa);
                c.store(client.offset(i * 4), ca);
            } else {
                c.load(client.offset(i * 4), ca);
                c.store(server.offset(i * 4), sa);
            }
        }
        c.exec(words + 8); // loop overhead + residue handling
    });
}

impl PpcSystem {
    /// Client-side helper: grant `server_ep` access to `region` (write
    /// access if `write`) via a PPC call to the Copy Server.
    pub fn copy_grant(
        &mut self,
        cpu: CpuId,
        caller: Pid,
        server_ep: EntryId,
        region: Region,
        write: bool,
    ) -> Result<(), PpcError> {
        let args = [
            ops::GRANT,
            server_ep as u64,
            region.base.0,
            region.len,
            write as u64,
            0,
            0,
            0,
        ];
        let rets = self.call(cpu, caller, COPY_SERVER_EP, args)?;
        if rets[0] == u64::MAX {
            return Err(PpcError::NoGrant);
        }
        Ok(())
    }

    /// Client-side helper: revoke grants to `server_ep`.
    pub fn copy_revoke(
        &mut self,
        cpu: CpuId,
        caller: Pid,
        server_ep: EntryId,
    ) -> Result<u64, PpcError> {
        let args = [ops::REVOKE, server_ep as u64, 0, 0, 0, 0, 0, 0];
        let rets = self.call(cpu, caller, COPY_SERVER_EP, args)?;
        Ok(rets[1])
    }

    /// Server-side helper (call from inside a handler, with the worker as
    /// caller): copy `len` bytes from `server_base` into the granter's
    /// memory at `client_base`.
    pub fn copy_to(
        &mut self,
        cpu: CpuId,
        worker: Pid,
        granter: ProgramId,
        client_base: PAddr,
        server_base: PAddr,
        len: u64,
    ) -> Result<u64, PpcError> {
        let args =
            [ops::COPY_TO, granter as u64, client_base.0, server_base.0, len, 0, 0, 0];
        let rets = self.call(cpu, worker, COPY_SERVER_EP, args)?;
        if rets[0] == u64::MAX {
            return Err(PpcError::NoGrant);
        }
        Ok(rets[1])
    }

    /// Server-side helper: copy `len` bytes from the granter's memory at
    /// `client_base` into server memory at `server_base`.
    pub fn copy_from(
        &mut self,
        cpu: CpuId,
        worker: Pid,
        granter: ProgramId,
        client_base: PAddr,
        server_base: PAddr,
        len: u64,
    ) -> Result<u64, PpcError> {
        let args =
            [ops::COPY_FROM, granter as u64, client_base.0, server_base.0, len, 0, 0, 0];
        let rets = self.call(cpu, worker, COPY_SERVER_EP, args)?;
        if rets[0] == u64::MAX {
            return Err(PpcError::NoGrant);
        }
        Ok(rets[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(base: u64, len: u64) -> Region {
        Region { base: PAddr(base), len }
    }

    #[test]
    fn grant_table_authorization() {
        let t = GrantTable::new();
        t.add(Grant {
            granter: 10,
            grantee: 5,
            grantee_program: 20,
            region: region(0x1000, 0x100),
            write: false,
        });
        // Exact region, read: ok.
        assert!(t.authorizes(10, 20, PAddr(0x1000), 0x100, false));
        // Subregion: ok.
        assert!(t.authorizes(10, 20, PAddr(0x1040), 0x40, false));
        // Write to a read grant: no.
        assert!(!t.authorizes(10, 20, PAddr(0x1000), 0x10, true));
        // Out of bounds: no.
        assert!(!t.authorizes(10, 20, PAddr(0x10ff), 0x10, false));
        // Wrong program: no.
        assert!(!t.authorizes(10, 21, PAddr(0x1000), 0x10, false));
        // Wrong granter: no.
        assert!(!t.authorizes(11, 20, PAddr(0x1000), 0x10, false));
    }

    #[test]
    fn revoke_removes_all_matching() {
        let t = GrantTable::new();
        for _ in 0..3 {
            t.add(Grant {
                granter: 1,
                grantee: 2,
                grantee_program: 3,
                region: region(0, 16),
                write: true,
            });
        }
        t.add(Grant {
            granter: 1,
            grantee: 9,
            grantee_program: 3,
            region: region(0, 16),
            write: true,
        });
        assert_eq!(t.revoke(1, 2), 3);
        assert_eq!(t.len(), 1);
        // Revoking again, or revoking principals that never granted, is a
        // clean zero — and leaves the unrelated grant alone.
        assert_eq!(t.revoke(1, 2), 0);
        assert_eq!(t.revoke(42, 2), 0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn zero_length_and_end_of_region_transfers() {
        let t = GrantTable::new();
        t.add(Grant {
            granter: 1,
            grantee: 2,
            grantee_program: 3,
            region: region(0x1000, 0x100),
            write: true,
        });
        // Zero-length anywhere inside, including the exact end: legal.
        assert!(t.authorizes(1, 3, PAddr(0x1000), 0, false));
        assert!(t.authorizes(1, 3, PAddr(0x1100), 0, true));
        // Zero-length one past the end: outside the region.
        assert!(!t.authorizes(1, 3, PAddr(0x1101), 0, false));
        // A transfer ending exactly at the region boundary: legal.
        assert!(t.authorizes(1, 3, PAddr(0x10ff), 1, true));
        assert!(t.authorizes(1, 3, PAddr(0x1000), 0x100, true));
        // One byte over the boundary: denied.
        assert!(!t.authorizes(1, 3, PAddr(0x1000), 0x101, false));
    }

    #[test]
    fn overflowing_spans_deny_instead_of_wrapping() {
        let t = GrantTable::new();
        t.add(Grant {
            granter: 1,
            grantee: 2,
            grantee_program: 3,
            region: region(0x1000, 0x100),
            write: true,
        });
        // base + len wraps u64: must deny, not wrap into the region.
        assert!(!t.authorizes(1, 3, PAddr(u64::MAX), 2, false));
        assert!(!t.authorizes(1, 3, PAddr(u64::MAX - 1), 0x1002, true));
        // A grant whose own region wraps can never authorize anything.
        t.add(Grant {
            granter: 5,
            grantee: 2,
            grantee_program: 3,
            region: region(u64::MAX - 8, 64),
            write: true,
        });
        assert!(!t.authorizes(5, 3, PAddr(u64::MAX - 8), 1, false));
    }

    #[test]
    fn generation_stamps_every_mutation() {
        let t = GrantTable::new();
        let g0 = t.generation();
        let g = Grant {
            granter: 1,
            grantee: 2,
            grantee_program: 3,
            region: region(0, 64),
            write: false,
        };
        t.add(g);
        let g1 = t.generation();
        assert_ne!(g0, g1, "add bumps the generation");
        // Reads leave the generation alone: a cached decision stays valid.
        assert!(t.authorizes(1, 3, PAddr(0), 64, false));
        assert_eq!(t.generation(), g1);
        assert_eq!(t.revoke(1, 2), 1);
        let g2 = t.generation();
        assert_ne!(g1, g2, "revoke bumps the generation");
        // An ineffective revoke is not a mutation.
        assert_eq!(t.revoke(1, 2), 0);
        assert_eq!(t.generation(), g2);
    }
}
