//! Program-ID authentication (§4.1).
//!
//! "As opposed to systems like Mach or Spring that use capabilities both
//! for naming and for providing security, we specifically chose to
//! separate the two issues. Callers are identified to servers by their
//! program ID, which can then be used by the server to retrieve
//! client-specific state so they can verify whether the client is
//! permitted to make the call."
//!
//! The PPC facility itself never checks permissions — that is the whole
//! point: there is no globally-shared capability state to update, so
//! naming stays a per-CPU array lookup. Servers that want access control
//! keep an [`Acl`] (or any richer policy) in their own state and consult
//! it inside their handler, charged as server time.

use std::collections::HashMap;

use hector_sim::cpu::{CostCategory, Cpu};
use hector_sim::sym::{MemAttrs, Region};
use hurricane_os::process::ProgramId;

/// Per-client access record a server keeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClientState {
    /// Whether calls are permitted at all.
    pub allowed: bool,
    /// Server-defined rights bits.
    pub rights: u32,
    /// Calls observed from this client (server-side accounting).
    pub calls: u64,
}

/// A server-side access-control list keyed by program ID.
#[derive(Clone, Debug)]
pub struct Acl {
    clients: HashMap<ProgramId, ClientState>,
    /// Policy for unknown programs.
    pub default_allow: bool,
    /// Symbolic memory of the table (server-local, cacheable).
    mem: Region,
}

impl Acl {
    /// An ACL stored in `mem` with the given default policy.
    pub fn new(mem: Region, default_allow: bool) -> Self {
        Acl { clients: HashMap::new(), default_allow, mem }
    }

    /// Grant `program` access with `rights`.
    pub fn allow(&mut self, program: ProgramId, rights: u32) {
        self.clients.insert(program, ClientState { allowed: true, rights, calls: 0 });
    }

    /// Explicitly deny `program`.
    pub fn deny(&mut self, program: ProgramId) {
        self.clients.insert(program, ClientState { allowed: false, rights: 0, calls: 0 });
    }

    /// The recorded state for `program`, if any.
    pub fn client(&self, program: ProgramId) -> Option<&ClientState> {
        self.clients.get(&program)
    }

    /// Charged permission check: hash the program ID, probe the table
    /// (server-local cached memory), update the per-client call count.
    /// Returns whether the call may proceed.
    pub fn check(&mut self, cpu: &mut Cpu, program: ProgramId) -> bool {
        let mem = self.mem;
        cpu.with_category(CostCategory::ServerTime, |cpu| {
            let attrs = MemAttrs::cached_private(mem.base.module());
            cpu.exec(10); // hash + compare
            cpu.load(mem.at((program as u64 * 16) % mem.len), attrs);
            cpu.store(mem.at((program as u64 * 16 + 8) % mem.len), attrs); // bump count
        });
        match self.clients.get_mut(&program) {
            Some(st) => {
                st.calls += 1;
                st.allowed
            }
            None => self.default_allow,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hector_sim::{Machine, MachineConfig};

    fn setup(default_allow: bool) -> (Machine, Acl) {
        let mut m = Machine::new(MachineConfig::hector(1));
        let mem = m.alloc_on(0, 512, "acl");
        (m, Acl::new(mem, default_allow))
    }

    #[test]
    fn allow_deny_and_default() {
        let (mut m, mut acl) = setup(false);
        acl.allow(7, 0b11);
        acl.deny(8);
        let cpu = m.cpu_mut(0);
        assert!(acl.check(cpu, 7));
        assert!(!acl.check(cpu, 8));
        assert!(!acl.check(cpu, 99), "unknown falls back to default deny");
        let (mut m2, mut acl2) = setup(true);
        assert!(acl2.check(m2.cpu_mut(0), 99), "default allow");
    }

    #[test]
    fn check_counts_calls() {
        let (mut m, mut acl) = setup(false);
        acl.allow(5, 0);
        let cpu = m.cpu_mut(0);
        acl.check(cpu, 5);
        acl.check(cpu, 5);
        assert_eq!(acl.client(5).unwrap().calls, 2);
    }

    #[test]
    fn check_is_charged_server_time() {
        let (mut m, mut acl) = setup(true);
        let cpu = m.cpu_mut(0);
        cpu.begin_measure();
        acl.check(cpu, 3);
        let bd = cpu.end_measure();
        assert!(bd.get(CostCategory::ServerTime).as_u64() > 0);
        assert_eq!(cpu.path_stats().shared_accesses, 0, "ACL is server-local");
    }
}
