//! Death and destruction (§4.5.2).
//!
//! "Service entry points may be deallocated using one of two strategies: a
//! **soft-kill** removes the entry point and all associated data
//! structures immediately, but allows calls in progress to complete; and a
//! **hard-kill** frees all resources and aborts any calls in progress."
//!
//! Because "all PPC resources may only be accessed from the processor they
//! are associated with", cleanup interrupts every processor to tear down
//! its local state — the same pattern systems use for TLB shootdown.

use hector_sim::cpu::{CostCategory, CpuId};
use hurricane_os::process::ProcState;

use crate::entry::{EntryId, EntryState, MAX_ENTRIES};
use crate::{Handler, PpcError, PpcSystem};

/// Check that `by` may administer `ep` (the owner, or program 0 = kernel).
fn check_owner(sys: &PpcSystem, ep: EntryId, by: u32) -> Result<(), PpcError> {
    if ep >= MAX_ENTRIES || sys.entries[ep].state == EntryState::Free {
        return Err(PpcError::UnknownEntry(ep));
    }
    if by != 0 && sys.entries[ep].owner != by {
        return Err(PpcError::PermissionDenied(by));
    }
    Ok(())
}

/// Charge the remote interrupts used to run cleanup on every processor
/// ("some cleanup operations [must] be performed by interrupting the
/// appropriate processor").
fn charge_cleanup_interrupts(sys: &mut PpcSystem, initiator: CpuId) {
    let n = sys.kernel.n_cpus();
    for c in 0..n {
        if c == initiator {
            continue;
        }
        let cpu = sys.kernel.machine.cpu_mut(c);
        cpu.trap_enter();
        cpu.with_category(CostCategory::Other, |cpu| cpu.exec(25)); // local teardown
        cpu.trap_exit();
    }
    // The initiator posts the interrupts (uncached device/IPI registers).
    let cpu = sys.kernel.machine.cpu_mut(initiator);
    cpu.with_category(CostCategory::Other, |cpu| cpu.exec(10 * n as u64));
}

/// Soft-kill `ep`: stop accepting calls; drain, then reap. Returns
/// immediately — the reap happens when the last in-progress call
/// completes (see the call return path).
pub fn soft_kill(
    sys: &mut PpcSystem,
    cpu: CpuId,
    ep: EntryId,
    by: u32,
) -> Result<(), PpcError> {
    check_owner(sys, ep, by)?;
    if sys.entries[ep].state != EntryState::Active {
        return Err(PpcError::EntryDead(ep));
    }
    sys.entries[ep].state = EntryState::SoftKilled;
    charge_cleanup_interrupts(sys, cpu);
    if sys.entries[ep].active_calls == 0 {
        reap_entry(sys, ep);
    }
    Ok(())
}

/// Hard-kill `ep`: free all resources now and abort calls in progress
/// ("required in cases where the server may be faulty").
pub fn hard_kill(
    sys: &mut PpcSystem,
    cpu: CpuId,
    ep: EntryId,
    by: u32,
) -> Result<(), PpcError> {
    check_owner(sys, ep, by)?;
    if sys.entries[ep].state == EntryState::Dead {
        return Err(PpcError::EntryDead(ep));
    }
    sys.entries[ep].state = EntryState::Dead;
    charge_cleanup_interrupts(sys, cpu);
    reap_entry(sys, ep);
    Ok(())
}

/// Exchange (§4.5.2): replace the handler of a live entry point without
/// dropping calls — "allowing on-line replacement of executing servers."
/// Per-worker initialization overrides are cleared so the first call to
/// each worker re-runs initialization against the new code.
pub fn exchange(
    sys: &mut PpcSystem,
    cpu: CpuId,
    ep: EntryId,
    new_handler: Handler,
    by: u32,
) -> Result<(), PpcError> {
    check_owner(sys, ep, by)?;
    if sys.entries[ep].state != EntryState::Active {
        return Err(PpcError::EntryDead(ep));
    }
    sys.set_handler(ep, new_handler);
    // Clear worker overrides on every CPU's pool.
    let n = sys.kernel.n_cpus();
    for c in 0..n {
        let workers: Vec<_> = sys.percpu[c].local[ep]
            .as_ref()
            .map(|l| l.pool.clone())
            .unwrap_or_default();
        for w in workers {
            sys.clear_worker_handler(w);
        }
    }
    charge_cleanup_interrupts(sys, cpu);
    Ok(())
}

/// Free every per-processor resource of `ep`: pooled workers die, held CDs
/// return to the pools, the local table slots clear, the handler is
/// dropped. The global slot stays in its terminal state (`SoftKilled` →
/// `Dead`); call [`reclaim_slot`] to make the ID reusable.
pub(crate) fn reap_entry(sys: &mut PpcSystem, ep: EntryId) {
    let n = sys.kernel.n_cpus();
    for c in 0..n {
        if let Some(local) = sys.percpu[c].local[ep].take() {
            for w in local.pool {
                sys.kernel.procs[w].state = ProcState::Dead;
                sys.clear_worker_handler(w);
            }
            for (_, cd) in local.held_cd {
                let cpu = sys.kernel.machine.cpu_mut(c);
                sys.percpu[c].cd_pool.release(cpu, cd);
            }
        }
    }
    sys.clear_handler(ep);
    if sys.entries[ep].state == EntryState::SoftKilled {
        sys.entries[ep].state = EntryState::Dead;
    }
}

/// Make a dead entry-point ID reusable. Separate from the kill itself so
/// that stale callers racing the kill observe `EntryDead` rather than
/// silently reaching an unrelated new service.
pub fn reclaim_slot(sys: &mut PpcSystem, ep: EntryId, by: u32) -> Result<(), PpcError> {
    if ep >= MAX_ENTRIES {
        return Err(PpcError::UnknownEntry(ep));
    }
    if sys.entries[ep].state != EntryState::Dead {
        return Err(PpcError::EntryDead(ep));
    }
    if by != 0 && sys.entries[ep].owner != by {
        return Err(PpcError::PermissionDenied(by));
    }
    sys.entries[ep] = crate::entry::EntrySlot::free();
    Ok(())
}

impl PpcSystem {
    /// Soft-kill via a PPC call to Frank (the public API a program uses).
    pub fn soft_kill_entry(
        &mut self,
        cpu: CpuId,
        caller: hurricane_os::process::Pid,
        ep: EntryId,
    ) -> Result<(), PpcError> {
        let rets = self.call(
            cpu,
            caller,
            crate::FRANK_EP,
            [crate::frank::ops::SOFT_KILL, ep as u64, 0, 0, 0, 0, 0, 0],
        )?;
        if rets[0] == u64::MAX {
            return Err(PpcError::PermissionDenied(self.kernel.procs[caller].program_id));
        }
        Ok(())
    }

    /// Hard-kill via a PPC call to Frank.
    pub fn hard_kill_entry(
        &mut self,
        cpu: CpuId,
        caller: hurricane_os::process::Pid,
        ep: EntryId,
    ) -> Result<(), PpcError> {
        let rets = self.call(
            cpu,
            caller,
            crate::FRANK_EP,
            [crate::frank::ops::HARD_KILL, ep as u64, 0, 0, 0, 0, 0, 0],
        )?;
        if rets[0] == u64::MAX {
            return Err(PpcError::PermissionDenied(self.kernel.procs[caller].program_id));
        }
        Ok(())
    }

    /// Exchange the handler of `ep` via a PPC call to Frank, staging the
    /// new handler the same way registration does.
    pub fn exchange_entry(
        &mut self,
        cpu: CpuId,
        caller: hurricane_os::process::Pid,
        ep: EntryId,
        new_handler: Handler,
    ) -> Result<(), PpcError> {
        let spec = crate::entry::ServiceSpec::new(self.entries[ep].asid);
        self.pending_bind = Some(crate::frank::BindRequest { spec, handler: new_handler });
        let rets = self.call(
            cpu,
            caller,
            crate::FRANK_EP,
            [crate::frank::ops::EXCHANGE, ep as u64, 0, 0, 0, 0, 0, 0],
        )?;
        if rets[0] == u64::MAX {
            return Err(PpcError::PermissionDenied(self.kernel.procs[caller].program_id));
        }
        Ok(())
    }
}
