//! PPC variants (§4.4): asynchronous requests, interrupt dispatching, and
//! upcalls.
//!
//! "All these situations benefit from bypassing the general scheduling
//! facility, maximizing locality, the dynamic creation of workers, and
//! unconstrained concurrency. [...] the above minor variants of our base
//! PPC facility allow us to replace these special case solutions."

use hector_sim::cpu::{CostCategory, CpuId};
use hurricane_os::process::Pid;

use crate::call::CallKind;
use crate::entry::EntryId;
use crate::{AsyncOutcome, PpcError, PpcSystem};

/// Exception codes delivered to a registered exception server (§4.4:
/// upcalls "are currently used for debugging and exception handling").
pub mod exception {
    /// A worker exceeded its service's stack limit.
    pub const STACK_OVERFLOW: u64 = 1;
    /// A call was aborted by a hard kill.
    pub const CALL_ABORTED: u64 = 2;
    /// Frank could not satisfy a resource request.
    pub const NO_RESOURCES: u64 = 3;
}

/// Handle identifying an asynchronous call outcome in
/// [`PpcSystem::async_log`].
pub type AsyncHandle = usize;

impl PpcSystem {
    /// Register `ep` as the system exception server: exceptional events
    /// (stack overflow, resource exhaustion) are delivered to it as
    /// upcalls with `args[0]` = exception code, `args[1]` = faulting entry
    /// point, `args[2]` = detail.
    pub fn set_exception_server(&mut self, ep: EntryId) {
        self.exception_ep = Some(ep);
    }

    /// Deliver an exception upcall if an exception server is registered.
    /// Best-effort: errors from the exception path are swallowed (an
    /// exception server must never wedge the faulting path).
    pub(crate) fn raise_exception(&mut self, cpu: CpuId, code: u64, faulting_ep: EntryId, detail: u64) {
        if let Some(ep) = self.exception_ep {
            if ep != faulting_ep {
                let _ = self.upcall(cpu, ep, [code, faulting_ep as u64, detail, 0, 0, 0, 0, 0]);
            }
        }
    }
}

impl PpcSystem {
    /// Asynchronous PPC: `caller` does not block — it is "put onto the
    /// processor ready-queue rather than linked into the call descriptor
    /// of the worker", and the worker's results are discarded. Used for
    /// e.g. file-block prefetch requests.
    ///
    /// Returns a handle into [`PpcSystem::async_log`] for tests/examples.
    pub fn call_async(
        &mut self,
        cpu: CpuId,
        caller: Pid,
        ep: EntryId,
        args: [u64; 8],
    ) -> Result<AsyncHandle, PpcError> {
        let rets = self.call_inner(cpu, Some(caller), ep, args, CallKind::Async)?;
        self.async_log.push(AsyncOutcome { ep, rets, caller_waited: false });
        Ok(self.async_log.len() - 1)
    }

    /// Interrupt dispatch: "an asynchronous request from the kernel to the
    /// device server is manufactured by the interrupt handler and
    /// dispatched as for a normal call. From the device server's point of
    /// view, it appears as a normal PPC request."
    ///
    /// `vector` rides in `args[0]`'s upper bits purely for the device
    /// server's benefit; there is no calling process.
    pub fn dispatch_interrupt(
        &mut self,
        cpu: CpuId,
        ep: EntryId,
        vector: u32,
        payload: [u64; 6],
    ) -> Result<AsyncHandle, PpcError> {
        // Hardware interrupt entry: trap edge + the handler manufacturing
        // the request.
        {
            let c = self.kernel.machine.cpu_mut(cpu);
            c.trap_enter();
            c.with_category(CostCategory::PpcKernel, |c| c.exec(15));
        }
        let mut args = [0u64; 8];
        args[0] = (vector as u64) << 32;
        args[1..7].copy_from_slice(&payload);
        let result = self.call_inner(cpu, None, ep, args, CallKind::Interrupt);
        // Return from the interrupt to whatever was running.
        {
            let c = self.kernel.machine.cpu_mut(cpu);
            c.trap_exit();
        }
        let rets = result?;
        self.async_log.push(AsyncOutcome { ep, rets, caller_waited: false });
        Ok(self.async_log.len() - 1)
    }

    /// Upcall: "essentially software-based interrupts. They use the same
    /// implementation as the interrupt dispatcher, but may be triggered by
    /// an arbitrary system event" — used for debugging and exception
    /// handling.
    pub fn upcall(
        &mut self,
        cpu: CpuId,
        ep: EntryId,
        args: [u64; 8],
    ) -> Result<AsyncHandle, PpcError> {
        {
            let c = self.kernel.machine.cpu_mut(cpu);
            // Software event: no hardware trap edge if we are already in
            // the kernel; from user mode the event entry costs a trap.
            if c.mode() == hector_sim::tlb::Space::User {
                c.trap_enter();
            }
            c.with_category(CostCategory::PpcKernel, |c| c.exec(10));
        }
        let result = self.call_inner(cpu, None, ep, args, CallKind::Upcall);
        {
            let c = self.kernel.machine.cpu_mut(cpu);
            if c.mode() == hector_sim::tlb::Space::Supervisor {
                c.trap_exit();
            }
        }
        let rets = result?;
        self.async_log.push(AsyncOutcome { ep, rets, caller_waited: false });
        Ok(self.async_log.len() - 1)
    }
}
