//! Bob, the file server, adapted to the PPC facility.
//!
//! Bob serves the workload of the paper's throughput experiment
//! (Figure 3): clients repeatedly issue `GetLength` requests against open
//! files. The handler authenticates the caller by program ID (§4.1), looks
//! the file up in server-local cached state, takes the small per-file
//! critical section, and reads the (cacheable, read-mostly) metadata.
//! Bulk reads demonstrate §4.2: the client grants Bob access to a buffer
//! and Bob issues `CopyTo` requests to the Copy Server.

use std::cell::RefCell;
use std::rc::Rc;

use hector_sim::cpu::CpuId;
use hector_sim::sym::PAddr;
use hector_sim::MachineConfig;
use hurricane_os::fs::{FileHandle, FileSystem};
use hurricane_os::process::Pid;

use crate::entry::{EntryId, ServiceSpec};
use crate::{Acl, Handler, HandlerCtx, PpcError, PpcSystem};

/// Bob opcodes.
pub mod ops {
    /// Return the length of the file in `args[1]`.
    pub const GET_LENGTH: u64 = 1;
    /// Set the length of the file in `args[1]` to `args[2]`.
    pub const SET_LENGTH: u64 = 2;
    /// Copy `args[3]` bytes of file `args[1]` into the client buffer at
    /// `args[2]` (requires a prior copy grant to Bob's entry point).
    pub const READ: u64 = 3;
}

/// A running Bob instance.
pub struct Bob {
    /// Bob's entry point.
    pub ep: EntryId,
    /// Bob's program identity.
    pub program: u32,
    /// The file system state (shared with the handler closure).
    pub fs: Rc<RefCell<FileSystem>>,
    /// Bob's access-control list (shared with the handler closure).
    pub acl: Rc<RefCell<Acl>>,
}

/// Install Bob as a user-level PPC server and register him with the Name
/// Server under `"bob"`. `default_allow` sets the ACL's policy for
/// programs without explicit entries.
pub fn install_bob(sys: &mut PpcSystem, default_allow: bool) -> Result<Bob, PpcError> {
    let asid = sys.kernel.create_space("bob");
    let program = sys.kernel.new_program_id();
    let fs_home = 0;
    let fs = Rc::new(RefCell::new(FileSystem::new(&mut sys.kernel.machine, fs_home)));
    let acl_mem = sys.kernel.machine.alloc_on(fs_home, 1024, "bob-acl");
    let acl = Rc::new(RefCell::new(Acl::new(acl_mem, default_allow)));

    let handler = bob_handler(Rc::clone(&fs), Rc::clone(&acl));
    let spec = ServiceSpec::new(asid).name("bob").owned_by(program);
    let ep = sys.bind_entry_boot(spec, handler)?;
    sys.naming.borrow_mut().register("bob", ep);
    Ok(Bob { ep, program, fs, acl })
}

fn bob_handler(fs: Rc<RefCell<FileSystem>>, acl: Rc<RefCell<Acl>>) -> Handler {
    Rc::new(move |sys: &mut PpcSystem, ctx: &HandlerCtx| {
        // Authentication first (§4.1): Bob checks the caller's program ID.
        let allowed = {
            let c = sys.kernel.machine.cpu_mut(ctx.cpu);
            acl.borrow_mut().check(c, ctx.caller_program)
        };
        if !allowed {
            return [u64::MAX, u64::from(ctx.caller_program), 0, 0, 0, 0, 0, 0];
        }
        match ctx.args[0] {
            ops::GET_LENGTH => {
                let h = ctx.args[1] as FileHandle;
                let fs_ref = fs.borrow();
                if h >= fs_ref.len() {
                    return [u64::MAX, 1, 0, 0, 0, 0, 0, 0];
                }
                let c = sys.kernel.machine.cpu_mut(ctx.cpu);
                let len = fs_ref.get_length_sequential(c, h, ctx.caller_program);
                [0, len, 0, 0, 0, 0, 0, 0]
            }
            ops::SET_LENGTH => {
                let h = ctx.args[1] as FileHandle;
                let new_len = ctx.args[2];
                let mut fs_ref = fs.borrow_mut();
                if h >= fs_ref.len() {
                    return [u64::MAX, 1, 0, 0, 0, 0, 0, 0];
                }
                {
                    let c = sys.kernel.machine.cpu_mut(ctx.cpu);
                    fs_ref.lookup_and_check(c, h, ctx.caller_program);
                    fs_ref.uncontended_lock(c, h);
                    fs_ref.cs_body(c, h);
                }
                fs_ref.set_length(h, new_len);
                [0, new_len, 0, 0, 0, 0, 0, 0]
            }
            ops::READ => {
                let h = ctx.args[1] as FileHandle;
                let client_buf = PAddr(ctx.args[2]);
                let want = ctx.args[3];
                let (len, meta_base) = {
                    let fs_ref = fs.borrow();
                    if h >= fs_ref.len() {
                        return [u64::MAX, 1, 0, 0, 0, 0, 0, 0];
                    }
                    let c = sys.kernel.machine.cpu_mut(ctx.cpu);
                    fs_ref.lookup_and_check(c, h, ctx.caller_program);
                    (fs_ref.file(h).length, fs_ref.file(h).meta.base)
                };
                let n = want.min(len);
                // Bulk transfer through the Copy Server (§4.2): the worker
                // itself makes the nested PPC call.
                match sys.copy_to(ctx.cpu, ctx.worker, ctx.caller_program, client_buf, meta_base, n)
                {
                    Ok(copied) => [0, copied, 0, 0, 0, 0, 0, 0],
                    Err(_) => [u64::MAX, 2, 0, 0, 0, 0, 0, 0],
                }
            }
            _ => [u64::MAX, 0xbad, 0, 0, 0, 0, 0, 0],
        }
    })
}

impl Bob {
    /// Create an open file homed on module `home` (boot-time helper).
    pub fn create_file(
        &self,
        sys: &mut PpcSystem,
        name: &str,
        length: u64,
        home: usize,
    ) -> FileHandle {
        self.fs.borrow_mut().create(&mut sys.kernel.machine, name, length, home)
    }

    /// Client-side stub: `GetLength(handle)` via PPC.
    pub fn get_length(
        &self,
        sys: &mut PpcSystem,
        cpu: CpuId,
        caller: Pid,
        h: FileHandle,
    ) -> Result<u64, PpcError> {
        let rets = sys.call(cpu, caller, self.ep, [ops::GET_LENGTH, h as u64, 0, 0, 0, 0, 0, 0])?;
        if rets[0] == u64::MAX {
            return Err(PpcError::PermissionDenied(rets[1] as u32));
        }
        Ok(rets[1])
    }

    /// Client-side stub: `SetLength(handle, len)` via PPC.
    pub fn set_length(
        &self,
        sys: &mut PpcSystem,
        cpu: CpuId,
        caller: Pid,
        h: FileHandle,
        len: u64,
    ) -> Result<u64, PpcError> {
        let rets =
            sys.call(cpu, caller, self.ep, [ops::SET_LENGTH, h as u64, len, 0, 0, 0, 0, 0])?;
        if rets[0] == u64::MAX {
            return Err(PpcError::PermissionDenied(rets[1] as u32));
        }
        Ok(rets[1])
    }

    /// Client-side stub: read up to `want` bytes of `h` into `client_buf`
    /// (the client must have granted Bob's entry access to the buffer).
    pub fn read(
        &self,
        sys: &mut PpcSystem,
        cpu: CpuId,
        caller: Pid,
        h: FileHandle,
        client_buf: PAddr,
        want: u64,
    ) -> Result<u64, PpcError> {
        let rets = sys.call(
            cpu,
            caller,
            self.ep,
            [ops::READ, h as u64, client_buf.0, want, 0, 0, 0, 0],
        )?;
        if rets[0] == u64::MAX {
            return Err(if rets[1] == 2 { PpcError::NoGrant } else { PpcError::UnknownEntry(h) });
        }
        Ok(rets[1])
    }
}

/// Boot a full system with Bob installed and `n_files` open files spread
/// across the machine's modules — the Figure 3 experimental setup.
pub fn boot_with_bob(cfg: MachineConfig, n_files: usize) -> (PpcSystem, Bob, Vec<FileHandle>) {
    let n_cpus = cfg.n_cpus;
    let mut sys = PpcSystem::boot(cfg);
    let bob = install_bob(&mut sys, true).expect("bob installs");
    let handles = (0..n_files)
        .map(|i| bob.create_file(&mut sys, &format!("file-{i}"), 1000 + i as u64, i % n_cpus))
        .collect();
    (sys, bob, handles)
}
