//! Call descriptors and the per-processor CD pool.
//!
//! A call descriptor (CD) "serves two purposes: it stores return
//! information during a call, and it points to physical memory used for
//! the stack of a worker process during a call" (§2). The pool is shared
//! by **all servers on one processor** and accessed by no other processor,
//! so allocation is a lock-free free-list pop in CPU-local cached memory —
//! and because stacks are recycled across servers called in succession,
//! the cache footprint of the whole IPC subsystem stays tiny.
//!
//! Stack-sharing trust groups (§2's proposed compromise) partition the
//! free list: entries in group *g* only recycle CDs previously used by
//! group *g*.

use std::collections::HashMap;

use hector_sim::cpu::{CostCategory, Cpu, CpuId};
use hector_sim::sym::{MemAttrs, Region};
use hector_sim::Machine;
use hurricane_os::process::Pid;

use crate::entry::TrustGroup;

/// Index of a CD within its processor's pool.
pub type CdId = usize;

/// CDs preallocated per processor at boot.
pub const INITIAL_CDS: usize = 2;

/// Words of return information stored into the CD on call entry (caller
/// pid, return PC, return SP, opcode/flags, linkage).
pub const CD_RETURN_WORDS: u64 = 5;

/// One call descriptor.
#[derive(Clone, Debug)]
pub struct Cd {
    /// The CD record itself (CPU-local, cached).
    pub mem: Region,
    /// The one-page physical stack this CD points at (§4.5.4: stacks are
    /// restricted to one page).
    pub stack: Region,
    /// Trust group the stack was last used by.
    pub group: TrustGroup,
    /// The caller linked into this CD for the current call (`None` when
    /// idle or when the call is asynchronous).
    pub linked_caller: Option<Pid>,
}

/// The per-processor CD pool.
#[derive(Clone, Debug)]
pub struct CdPool {
    /// All CDs ever created on this processor.
    pub cds: Vec<Cd>,
    /// Free lists, partitioned by trust group.
    free: HashMap<TrustGroup, Vec<CdId>>,
    /// Symbolic memory of the free-list heads (CPU-local).
    pub pool_mem: Region,
    cpu: CpuId,
}

impl CdPool {
    /// Boot-time pool with `n` CDs in the default trust group.
    pub fn boot(machine: &mut Machine, cpu: CpuId, n: usize) -> Self {
        let pool_mem = machine.alloc_on(cpu, 128, "cd-pool");
        let mut pool = CdPool { cds: Vec::new(), free: HashMap::new(), pool_mem, cpu };
        for _ in 0..n {
            let id = pool.create_uncharged(machine, 0);
            pool.free.entry(0).or_default().push(id);
        }
        pool
    }

    fn create_uncharged(&mut self, machine: &mut Machine, group: TrustGroup) -> CdId {
        let mem = machine.alloc_on(self.cpu, 64, "cd");
        let stack = machine.alloc_page_on(self.cpu, "cd-stack");
        self.cds.push(Cd { mem, stack, group, linked_caller: None });
        self.cds.len() - 1
    }

    /// Create a new CD on the call path (what Frank does when the pool is
    /// dry): charged allocation + initialization.
    pub fn create_charged(&mut self, machine: &mut Machine, group: TrustGroup) -> CdId {
        let id = {
            let mem = machine.alloc_on(self.cpu, 64, "cd");
            let stack = machine.alloc_page_on(self.cpu, "cd-stack");
            self.cds.push(Cd { mem, stack, group, linked_caller: None });
            self.cds.len() - 1
        };
        let cpu = machine.cpu_mut(self.cpu);
        let attrs = MemAttrs::cached_private(self.cpu);
        cpu.exec(60); // page + record allocator work
        cpu.store_words(self.cds[id].mem.base, 8, attrs); // init the record
        id
    }

    /// Number of CDs currently free in `group`.
    pub fn free_count(&self, group: TrustGroup) -> usize {
        self.free.get(&group).map_or(0, |v| v.len())
    }

    /// Total CDs owned by this processor.
    pub fn total(&self) -> usize {
        self.cds.len()
    }

    /// Fast-path allocation: pop the free list (charged to `CdManip`).
    /// Returns `None` when the group's list is empty — the caller
    /// redirects to Frank.
    pub fn alloc(&mut self, cpu: &mut Cpu, group: TrustGroup) -> Option<CdId> {
        debug_assert_eq!(cpu.id, self.cpu, "CD pools are strictly processor-local");
        let attrs = MemAttrs::cached_private(self.pool_mem.base.module());
        cpu.with_category(CostCategory::CdManip, |cpu| {
            cpu.load(self.pool_mem.at(8 * (group as u64 % 8)), attrs); // list head
            cpu.exec(2);
        });
        let id = self.free.get_mut(&group)?.pop()?;
        cpu.with_category(CostCategory::CdManip, |cpu| {
            let cd_attrs = MemAttrs::cached_private(self.cds[id].mem.base.module());
            cpu.load(self.cds[id].mem.at(0), cd_attrs); // next link
            cpu.store(self.pool_mem.at(8 * (group as u64 % 8)), attrs); // new head
            cpu.exec(2);
        });
        Some(id)
    }

    /// Fast-path free: push onto the group's free list (charged).
    pub fn release(&mut self, cpu: &mut Cpu, id: CdId) {
        debug_assert_eq!(cpu.id, self.cpu);
        let group = self.cds[id].group;
        let attrs = MemAttrs::cached_private(self.pool_mem.base.module());
        cpu.with_category(CostCategory::CdManip, |cpu| {
            let cd_attrs = MemAttrs::cached_private(self.cds[id].mem.base.module());
            cpu.store(self.cds[id].mem.at(0), cd_attrs); // link = old head
            cpu.store(self.pool_mem.at(8 * (group as u64 % 8)), attrs); // head = cd
            cpu.exec(2);
        });
        self.cds[id].linked_caller = None;
        self.free.entry(group).or_default().push(id);
    }

    /// Store the return information for `caller` into CD `id` (charged to
    /// `CdManip`: this happens on every call, held or not).
    pub fn store_return_info(&mut self, cpu: &mut Cpu, id: CdId, caller: Option<Pid>) {
        let cd = &mut self.cds[id];
        let attrs = MemAttrs::cached_private(cd.mem.base.module());
        cpu.with_category(CostCategory::CdManip, |cpu| {
            cpu.store_words(cd.mem.at(8), CD_RETURN_WORDS, attrs);
            cpu.exec(2);
        });
        cd.linked_caller = caller;
    }

    /// Load the return information from CD `id` on the return path
    /// (charged). Returns the linked caller.
    pub fn load_return_info(&mut self, cpu: &mut Cpu, id: CdId) -> Option<Pid> {
        let cd = &mut self.cds[id];
        let attrs = MemAttrs::cached_private(cd.mem.base.module());
        cpu.with_category(CostCategory::CdManip, |cpu| {
            cpu.load_words(cd.mem.at(8), CD_RETURN_WORDS, attrs);
            cpu.exec(2);
        });
        cd.linked_caller.take()
    }

    /// Reclaim surplus CDs above `keep`, returning how many were freed
    /// ("extra stacks created during peak call activity can easily be
    /// reclaimed"). Only fully-idle CDs on free lists are reclaimed.
    pub fn shrink_to(&mut self, keep: usize) -> usize {
        let mut reclaimed = 0;
        for list in self.free.values_mut() {
            while self.cds.len() - reclaimed > keep && list.pop().is_some() {
                reclaimed += 1;
            }
        }
        // Note: the symbolic regions are not returned to the heap (the
        // simulator's heap is a bump allocator); what matters for the model
        // is that the CDs leave the free lists.
        reclaimed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hector_sim::MachineConfig;

    fn setup(n: usize) -> (Machine, CdPool) {
        let mut m = Machine::new(MachineConfig::hector(2));
        let pool = CdPool::boot(&mut m, 0, n);
        (m, pool)
    }

    #[test]
    fn boot_pool_has_initial_cds() {
        let (_, pool) = setup(2);
        assert_eq!(pool.total(), 2);
        assert_eq!(pool.free_count(0), 2);
    }

    #[test]
    fn alloc_release_roundtrip() {
        let (mut m, mut pool) = setup(2);
        let cpu = m.cpu_mut(0);
        let a = pool.alloc(cpu, 0).unwrap();
        let b = pool.alloc(cpu, 0).unwrap();
        assert_ne!(a, b);
        assert_eq!(pool.free_count(0), 0);
        assert!(pool.alloc(cpu, 0).is_none(), "dry pool reports empty");
        pool.release(cpu, a);
        assert_eq!(pool.alloc(cpu, 0), Some(a), "LIFO recycling for cache warmth");
    }

    #[test]
    fn cds_and_stacks_are_cpu_local() {
        let mut m = Machine::new(MachineConfig::hector(4));
        let pool = CdPool::boot(&mut m, 3, 2);
        for cd in &pool.cds {
            assert_eq!(cd.mem.base.module(), 3);
            assert_eq!(cd.stack.base.module(), 3);
            assert_eq!(cd.stack.len, 4096, "one-page stacks (§4.5.4)");
        }
    }

    #[test]
    fn trust_groups_do_not_share_stacks() {
        let (mut m, mut pool) = setup(1);
        // Group 5 has no CDs yet.
        let cpu = m.cpu_mut(0);
        assert!(pool.alloc(cpu, 5).is_none());
        let id = pool.create_charged(&mut m, 5);
        let cpu = m.cpu_mut(0);
        pool.release(cpu, id);
        assert_eq!(pool.free_count(5), 1);
        assert_eq!(pool.free_count(0), 1, "default group untouched");
        let got = pool.alloc(cpu, 5).unwrap();
        assert_eq!(got, id);
    }

    #[test]
    fn return_info_links_and_unlinks_caller() {
        let (mut m, mut pool) = setup(1);
        let cpu = m.cpu_mut(0);
        let id = pool.alloc(cpu, 0).unwrap();
        pool.store_return_info(cpu, id, Some(42));
        assert_eq!(pool.cds[id].linked_caller, Some(42));
        assert_eq!(pool.load_return_info(cpu, id), Some(42));
        assert_eq!(pool.cds[id].linked_caller, None, "linkage consumed");
    }

    #[test]
    fn operations_touch_only_local_memory_and_no_locks() {
        let (mut m, mut pool) = setup(2);
        let cpu = m.cpu_mut(0);
        cpu.begin_measure();
        let id = pool.alloc(cpu, 0).unwrap();
        pool.store_return_info(cpu, id, Some(1));
        pool.load_return_info(cpu, id);
        pool.release(cpu, id);
        let st = cpu.path_stats();
        assert_eq!(st.shared_accesses, 0, "CD path must touch no shared data");
        assert_eq!(st.lock_acquires, 0, "CD path must take no locks");
        let bd = cpu.end_measure();
        assert!(bd.get(CostCategory::CdManip).as_u64() > 0);
        assert!(bd.get(CostCategory::Other).is_zero());
    }

    #[test]
    fn shrink_reclaims_surplus() {
        let (mut m, mut pool) = setup(2);
        for _ in 0..3 {
            let id = pool.create_charged(&mut m, 0);
            let cpu = m.cpu_mut(0);
            pool.release(cpu, id);
        }
        assert_eq!(pool.total(), 5);
        assert_eq!(pool.free_count(0), 5);
        let reclaimed = pool.shrink_to(2);
        assert_eq!(reclaimed, 3);
        assert_eq!(pool.free_count(0), 2);
    }

    #[test]
    fn charged_creation_advances_clock() {
        let (mut m, mut pool) = setup(0);
        let before = m.cpu(0).clock();
        pool.create_charged(&mut m, 0);
        assert!(m.cpu(0).clock() > before);
    }
}
