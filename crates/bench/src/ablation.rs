//! Lock ablation: what one lock in the IPC path costs at scale.
//!
//! Four designs under an identical null-call workload:
//!
//! * **ppc** — the paper's per-processor, lock-free design;
//! * **locked-ppc** — same fastpath, CD/worker pools global behind a lock;
//! * **lrpc** — LRPC-style shared binding + locked A-stack list;
//! * **msg-rpc** — Hurricane's message-passing facility.
//!
//! This regenerates the *implication* of Figure 3's dashed line: "this
//! experiment illustrates the dramatic impact any locks in the IPC path
//! might have."

use hector_sim::des::{Des, Segment, SegmentLoopActor};
use hector_sim::time::Cycles;
use hector_sim::{Machine, MachineConfig};
use hurricane_os::Kernel;
use ipc_baselines::{locked_ppc::LockedPpc, lrpc::Lrpc, msg_rpc::MsgRpc, DesRecipe};
use ppc_core::microbench::{self, Condition};

/// Throughput of each design at one processor count.
#[derive(Clone, Copy, Debug)]
pub struct AblationRow {
    /// Client processors.
    pub n: usize,
    /// Lock-free per-processor PPC (calls/s).
    pub ppc: f64,
    /// PPC with a global locked pool.
    pub locked_ppc: f64,
    /// LRPC-style shared structures.
    pub lrpc: f64,
    /// Message-passing RPC.
    pub msg_rpc: f64,
}

fn throughput(recipes: &[DesRecipe], max_cpus: usize, deadline: Cycles, shared_lock: bool) -> f64 {
    let mut des = Des::new(MachineConfig::hector(max_cpus));
    // Lock 0 is the shared one; per-client locks follow when not shared.
    let shared = des.add_lock(0);
    for (c, r) in recipes.iter().enumerate() {
        let lock = if shared_lock { shared } else { des.add_lock(c) };
        let segments: Vec<Segment> = r
            .segments
            .iter()
            .map(|s| match s {
                Segment::Acquire(_) => Segment::Acquire(lock),
                Segment::Release(_) => Segment::Release(lock),
                Segment::Busy(c) => Segment::Busy(*c),
            })
            .collect();
        des.add_actor(c, SegmentLoopActor::new(segments, deadline), Cycles(13 * c as u64));
    }
    des.run_until(deadline + Cycles::from_us(1000.0));
    let total: u64 = des.actors().iter().map(|a| a.completed).sum();
    total as f64 / deadline.as_secs()
}

/// Run the ablation for 1..=`max_cpus`, simulating `sim_us` per point.
pub fn run(max_cpus: usize, sim_us: f64) -> Vec<AblationRow> {
    let deadline = Cycles::from_us(sim_us);

    // PPC: measure the warm null round trip once; it is CPU-local, so the
    // per-iteration cost is the same on every processor.
    let ppc_total = microbench::measure(Condition {
        kernel_server: false,
        hold_cd: false,
        flushed: false,
    })
    .total();
    let ppc_recipe = DesRecipe::lock_free(ppc_total);

    // Locked-pool PPC.
    let mut m = Machine::new(MachineConfig::hector(max_cpus));
    let lp = LockedPpc::new(&mut m, 0);
    let lp_recipes: Vec<DesRecipe> = (0..max_cpus).map(|c| lp.des_recipe(&mut m, c, 0)).collect();

    // LRPC.
    let mut m2 = Machine::new(MachineConfig::hector(max_cpus));
    let lrpc = Lrpc::new(&mut m2, 0);
    let lrpc_recipes: Vec<DesRecipe> =
        (0..max_cpus).map(|c| lrpc.des_recipe(&mut m2, c, 0)).collect();

    // Message RPC.
    let mut k = Kernel::boot(MachineConfig::hector(max_cpus));
    let mut msg = MsgRpc::new(&mut k, 0);
    let msg_recipes: Vec<DesRecipe> =
        (0..max_cpus).map(|c| msg.des_recipe(&mut k, c, 0)).collect();

    (1..=max_cpus)
        .map(|n| AblationRow {
            n,
            ppc: throughput(&vec![ppc_recipe.clone(); n], max_cpus, deadline, false),
            locked_ppc: throughput(&lp_recipes[..n], max_cpus, deadline, true),
            lrpc: throughput(&lrpc_recipes[..n], max_cpus, deadline, true),
            msg_rpc: throughput(&msg_recipes[..n], max_cpus, deadline, true),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_free_wins_at_scale() {
        let rows = run(8, 20_000.0);
        let r1 = &rows[0];
        let r8 = &rows[7];
        // At one CPU the designs are within the same order of magnitude.
        assert!(r1.ppc / r1.locked_ppc < 2.0);
        // At 8 CPUs the lock-free design scales ~linearly...
        assert!(r8.ppc / r1.ppc > 7.0, "ppc speedup {}", r8.ppc / r1.ppc);
        // ...while every locked design has fallen off linear.
        assert!(r8.locked_ppc / r1.locked_ppc < 7.0);
        assert!(r8.lrpc / r1.lrpc < 6.5);
        assert!(r8.msg_rpc / r1.msg_rpc < 6.5);
        // And the ordering at scale is ppc > locked variants.
        assert!(r8.ppc > r8.locked_ppc);
        assert!(r8.ppc > r8.lrpc);
        assert!(r8.ppc > r8.msg_rpc);
    }

    #[test]
    fn msg_rpc_is_slowest_at_one_cpu() {
        let rows = run(1, 20_000.0);
        let r = &rows[0];
        assert!(r.msg_rpc < r.ppc, "msg {} vs ppc {}", r.msg_rpc, r.ppc);
        assert!(r.msg_rpc < r.lrpc);
    }
}
