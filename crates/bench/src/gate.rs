//! The CI latency gate: compare a freshly measured latency
//! distribution against the committed `BENCH_*.json` baselines and
//! fail on tail regression.
//!
//! The committed artifacts are the perf contract: a change that slides
//! null-call p999 from 8 µs to 30 µs still passes every functional
//! test, so without a gate tail regressions land silently and are
//! archaeology to bisect later. The gate replays the same workloads
//! the bench bins measure (see `bin/latency_gate.rs`), with a
//! *private, unsampled* histogram per mode — every call recorded, the
//! max exact — and checks each tail quantile against the committed
//! value times a tolerance factor.
//!
//! Tolerances are deliberately loose (3–8×): CI boxes are noisy,
//! one-shot runs land anywhere inside the committed distribution, and
//! a gate that cries wolf gets deleted. What it must catch is the
//! step-function regression — a lost wakeup path, an accidental lock,
//! a convoy — which shows up as 10×+ on p999/max, not 1.3×. The
//! `floor_ns` clamp keeps sub-microsecond baselines from turning
//! scheduler jitter into failures.

use std::fmt;
use std::path::Path;

use crate::report::Json;

/// Multiplicative slack per gated field, plus the absolute floor under
/// which a measurement never violates (noise immunity for tiny
/// baselines).
#[derive(Clone, Copy, Debug)]
pub struct Tolerance {
    /// Factor over the baseline p99.
    pub p99: f64,
    /// Factor over the baseline p999.
    pub p999: f64,
    /// Factor over the baseline max.
    pub max: f64,
    /// Measurements at or under this many ns never violate, whatever
    /// the baseline says.
    pub floor_ns: f64,
    /// The `max` field's own floor: a single hypervisor descheduling
    /// slice (1–4 ms on shared runners) can land in *any* run's max, so
    /// a max under this bound is scheduler noise, not a regression. The
    /// failures max-gating exists for — a lost wakeup, a wedged worker —
    /// measure 10 ms to whole watchdog timeouts.
    pub max_floor_ns: f64,
}

impl Tolerance {
    /// The full-run gate: p99 ×3, p999 ×4, max ×8, 4 µs floor, 2 ms
    /// max-floor.
    pub fn full() -> Tolerance {
        Tolerance { p99: 3.0, p999: 4.0, max: 8.0, floor_ns: 4_000.0, max_floor_ns: 2_000_000.0 }
    }

    /// The smoke gate: everything doubled — smoke runs take far fewer
    /// samples, so their tails are noisier by construction.
    pub fn smoke() -> Tolerance {
        let t = Tolerance::full();
        Tolerance {
            p99: t.p99 * 2.0,
            p999: t.p999 * 2.0,
            max: t.max * 2.0,
            floor_ns: t.floor_ns * 2.0,
            max_floor_ns: t.max_floor_ns * 2.0,
        }
    }
}

/// One gated field that exceeded its budget.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// The mode label (e.g. `null/spin`).
    pub mode: String,
    /// The quantile that regressed (`p99`, `p999`, `max`).
    pub field: &'static str,
    /// What this run measured (ns).
    pub measured: f64,
    /// The committed baseline value (ns).
    pub baseline: f64,
    /// The budget that was exceeded (ns).
    pub limit: f64,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}: measured {:.0} ns > limit {:.0} ns (baseline {:.0} ns, {:.1}x)",
            self.mode,
            self.field,
            self.measured,
            self.limit,
            self.baseline,
            self.measured / self.baseline.max(1.0),
        )
    }
}

/// Check one mode's measured latency object (`p50`/`p99`/`p999`/`max`
/// fields, as produced by [`crate::report::latency_fields`]) against
/// the committed baseline's. Fields absent on either side are skipped
/// — a new mode gates itself only once its baseline is committed.
pub fn check(mode: &str, measured: &Json, baseline: &Json, tol: &Tolerance) -> Vec<Violation> {
    let mut out = Vec::new();
    for (field, factor) in [("p99", tol.p99), ("p999", tol.p999), ("max", tol.max)] {
        let (Some(m), Some(b)) = (
            measured.get(field).and_then(|v| v.as_f64()),
            baseline.get(field).and_then(|v| v.as_f64()),
        ) else {
            continue;
        };
        let floor = if field == "max" { tol.max_floor_ns } else { tol.floor_ns };
        let limit = (b * factor).max(floor);
        if m > limit {
            out.push(Violation {
                mode: mode.to_string(),
                field,
                measured: m,
                baseline: b,
                limit,
            });
        }
    }
    out
}

/// Load a committed `BENCH_*.json` baseline from `dir`. `None` when the
/// file is absent or unparsable — the caller skips that matrix rather
/// than failing CI on a baseline that was never committed. A baseline
/// with a stale or missing `schema_version` still loads (the quantile
/// fields it gates on are stable), but warns on stderr so the drift
/// gets re-stamped instead of silently accumulating.
pub fn load_baseline(dir: &Path, name: &str) -> Option<Json> {
    let text = std::fs::read_to_string(dir.join(name)).ok()?;
    let doc = Json::parse(&text).ok()?;
    ppc_rt::export::check_schema_version(&doc, name);
    Some(doc)
}

/// The latency object of `mode`'s field `field` inside a parsed
/// baseline document (`{"modes": {mode: {field: {...}}}}`).
pub fn baseline_latency<'a>(doc: &'a Json, mode: &str, field: &str) -> Option<&'a Json> {
    doc.get("modes")?.get(mode)?.get(field)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{latency_fields, Histogram};

    fn lat(p99: f64, p999: f64, max: f64) -> Json {
        Json::obj([
            ("p50", Json::Num(p99 / 3.0)),
            ("p99", Json::Num(p99)),
            ("p999", Json::Num(p999)),
            ("max", Json::Num(max)),
        ])
    }

    #[test]
    fn gate_fails_on_synthetic_regression() {
        // The committed distribution of a healthy spin-mode null call…
        let baseline = lat(3_200.0, 8_000.0, 30_000.0);
        // …and a run with a reintroduced park convoy: p999 blown out an
        // order of magnitude, max into wedge territory, p99 fine.
        let regressed = lat(3_500.0, 90_000.0, 12_000_000.0);
        let v = check("null/spin", &regressed, &baseline, &Tolerance::full());
        assert_eq!(v.len(), 2, "p999 and max both violate: {v:?}");
        assert!(v.iter().any(|x| x.field == "p999" && x.measured == 90_000.0));
        assert!(v.iter().any(|x| x.field == "max"));
        // The violation prints enough to act on without re-running.
        let msg = v[0].to_string();
        assert!(msg.contains("null/spin"), "{msg}");
        assert!(msg.contains("baseline"), "{msg}");
    }

    #[test]
    fn gate_passes_identical_and_tolerated_runs() {
        let baseline = lat(3_200.0, 8_000.0, 30_000.0);
        assert!(check("m", &baseline, &baseline, &Tolerance::full()).is_empty());
        // Anything inside the factor budget passes — and a max that is
        // merely one descheduling slice (under the 2 ms max-floor)
        // passes even when the baseline max was tiny.
        let warm = lat(3_200.0 * 2.9, 8_000.0 * 3.9, 1_900_000.0);
        assert!(check("m", &warm, &baseline, &Tolerance::full()).is_empty());
        // The smoke gate is strictly looser.
        let noisy = lat(3_200.0 * 5.0, 8_000.0 * 7.0, 30_000.0 * 15.0);
        assert!(!check("m", &noisy, &baseline, &Tolerance::full()).is_empty());
        assert!(check("m", &noisy, &baseline, &Tolerance::smoke()).is_empty());
    }

    #[test]
    fn floor_absorbs_tiny_baselines() {
        // A 100 ns baseline p99 with a 900 ns measurement is scheduler
        // jitter, not a regression: under the floor, never a violation.
        let baseline = lat(100.0, 150.0, 300.0);
        let jittery = lat(900.0, 2_000.0, 3_900.0);
        assert!(check("m", &jittery, &baseline, &Tolerance::full()).is_empty());
        // Past the floor the factors take over again.
        let real = lat(5_000.0, 9_000.0, 40_000.0);
        assert!(!check("m", &real, &baseline, &Tolerance::full()).is_empty());
    }

    #[test]
    fn missing_fields_and_baselines_are_skipped() {
        let baseline = lat(3_200.0, 8_000.0, 30_000.0);
        // An empty measured object (histograms compiled out) gates
        // nothing rather than panicking.
        assert!(check("m", &Json::Obj(Vec::new()), &baseline, &Tolerance::full()).is_empty());
        assert!(load_baseline(Path::new("/nonexistent"), "BENCH_NOPE.json").is_none());
    }

    #[test]
    fn measured_histogram_feeds_the_gate() {
        // End-to-end shape check: a real Histogram's latency_fields
        // object flows through check() against a parsed baseline doc.
        let mut h = Histogram::new();
        for _ in 0..1000 {
            h.record(1_500);
        }
        h.record(10_000_000); // one catastrophic (wedge-scale) outlier → exact max
        let doc = Json::parse(
            r#"{"modes":{"null/spin":{"latency_ns":{"p99":3191,"p999":24576,"max":84704}}}}"#,
        )
        .unwrap();
        let base = baseline_latency(&doc, "null/spin", "latency_ns").unwrap();
        let v = check("null/spin", &latency_fields(&h), base, &Tolerance::full());
        assert!(
            v.iter().any(|x| x.field == "max" && x.measured >= 10_000_000.0),
            "the unsampled exact max reaches the gate: {v:?}"
        );
    }
}
