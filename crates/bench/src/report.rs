//! Small fixed-width table formatting for the figure/table binaries.

/// Format a row of cells with the given column widths (right-aligned
/// numerics look best for the paper-style tables).
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::new();
    for (i, c) in cells.iter().enumerate() {
        let w = widths.get(i).copied().unwrap_or(12);
        out.push_str(&format!("{c:>w$}  "));
    }
    out.trim_end().to_string()
}

/// A horizontal rule matching `widths`.
pub fn rule(widths: &[usize]) -> String {
    let total: usize = widths.iter().map(|w| w + 2).sum();
    "-".repeat(total.saturating_sub(2))
}

/// Render a simple ASCII sparkline-style bar of `value` against `max`.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_is_aligned() {
        let s = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(s, "  a    bb");
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10), "##########", "clamped at width");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }
}
