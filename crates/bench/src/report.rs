//! Small fixed-width table formatting for the figure/table binaries,
//! plus the shared `--json <path>` machine-readable artifact writer.
//!
//! Every bench binary accepts `--json <path>` (or `--json=<path>`) and
//! writes a `BENCH_*.json`-style document next to its ASCII table:
//! `{"bench": ..., <metadata>, "modes": {<label>: {...}}}`. Latency
//! distributions ride along as the runtime exporter's histogram objects
//! (`count`/`p50`/`p90`/`p99`/`p999`/`max`/`buckets`), so the repo accumulates
//! a queryable perf trajectory instead of screen-scraped tables.

use std::path::{Path, PathBuf};

pub use ppc_rt::export::{histogram_json, Json};
pub use ppc_rt::{Histogram, LatencyKind};

/// Split the shared `--json <path>` / `--json=<path>` flag out of an
/// argument stream; returns the remaining args and the path, if given.
pub fn json_flag(args: impl Iterator<Item = String>) -> (Vec<String>, Option<PathBuf>) {
    let mut rest = Vec::new();
    let mut path = None;
    let mut args = args;
    while let Some(a) = args.next() {
        if a == "--json" {
            path = args.next().map(PathBuf::from);
        } else if let Some(p) = a.strip_prefix("--json=") {
            path = Some(PathBuf::from(p));
        } else {
            rest.push(a);
        }
    }
    (rest, path)
}

/// One bench run's machine-readable artifact, accumulated as the run
/// prints its table and written once at the end.
pub struct JsonReport {
    bench: String,
    meta: Vec<(String, Json)>,
    modes: Vec<(String, Json)>,
}

/// The host's real online core count. `available_parallelism` answers
/// "how many threads should I spawn" — under cgroup CPU quotas or an
/// affinity mask it can report 1 on a many-core box, which is what the
/// committed artifacts used to stamp as `host_cores`. For a perf
/// artifact we want the machine, not the quota: count `processor`
/// entries in `/proc/cpuinfo` and fall back to `available_parallelism`
/// only when that is unreadable (non-Linux hosts).
pub fn host_cores() -> usize {
    let from_cpuinfo = std::fs::read_to_string("/proc/cpuinfo")
        .map(|s| s.lines().filter(|l| l.starts_with("processor")).count())
        .unwrap_or(0);
    if from_cpuinfo > 0 {
        return from_cpuinfo;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// How many CPUs this process may actually be scheduled on (the
/// affinity mask, e.g. `Cpus_allowed_list: 0-3,8`), so the artifact
/// records thread placement next to the raw core count. Falls back to
/// [`host_cores`] when `/proc/self/status` is unavailable.
pub fn cpus_allowed() -> usize {
    let parsed = std::fs::read_to_string("/proc/self/status").ok().and_then(|s| {
        let list = s.lines().find_map(|l| l.strip_prefix("Cpus_allowed_list:"))?;
        let mut n = 0usize;
        for range in list.trim().split(',') {
            let mut ends = range.splitn(2, '-');
            let lo: usize = ends.next()?.trim().parse().ok()?;
            let hi: usize = match ends.next() {
                Some(h) => h.trim().parse().ok()?,
                None => lo,
            };
            n += hi.saturating_sub(lo) + 1;
        }
        (n > 0).then_some(n)
    });
    parsed.unwrap_or_else(host_cores)
}

impl JsonReport {
    /// A report for bench `bench`, stamped with the host's core count
    /// ([`host_cores`]), the scheduler-visible parallelism, and the
    /// process affinity mask width ([`cpus_allowed`]) — enough to read
    /// a committed artifact and know what hardware and placement
    /// produced it.
    pub fn new(bench: &str) -> Self {
        let parallelism = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        JsonReport {
            bench: bench.to_string(),
            meta: vec![
                (
                    "schema_version".to_string(),
                    Json::Num(ppc_rt::export::SCHEMA_VERSION as f64),
                ),
                ("host_cores".to_string(), Json::Num(host_cores() as f64)),
                ("host_parallelism".to_string(), Json::Num(parallelism as f64)),
                ("cpus_allowed".to_string(), Json::Num(cpus_allowed() as f64)),
            ],
            modes: Vec::new(),
        }
    }

    /// Attach a top-level metadata field.
    pub fn meta(&mut self, key: &str, value: Json) {
        self.meta.push((key.to_string(), value));
    }

    /// Record one measured mode/row (label must be unique per run).
    pub fn mode(&mut self, label: &str, fields: Vec<(String, Json)>) {
        self.modes.push((label.to_string(), Json::Obj(fields)));
    }

    /// The document: `{"bench": ..., <meta>, "modes": {...}}`.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("bench".to_string(), Json::Str(self.bench.clone()))];
        fields.extend(self.meta.iter().cloned());
        fields.push(("modes".to_string(), Json::Obj(self.modes.clone())));
        Json::Obj(fields)
    }

    /// Write the document to `path` (with a trailing newline).
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().to_string() + "\n")
    }

    /// Write to `path` when the `--json` flag was given; prints the
    /// destination, panics on I/O failure (a bench artifact silently
    /// missing is worse than a failed run).
    pub fn write_if(&self, path: &Option<PathBuf>) {
        if let Some(path) = path {
            self.write(path).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
            println!("json report: {}", path.display());
        }
    }
}

/// `(label, value)` numeric fields, the common row shape.
pub fn num_fields(pairs: &[(&str, f64)]) -> Vec<(String, Json)> {
    pairs.iter().map(|(k, v)| (k.to_string(), Json::Num(*v))).collect()
}

/// The percentile summary every latency-reporting mode includes:
/// p50/p90/p99/p999/max plus the sample count, from a merged histogram.
/// Returns an empty object for an empty histogram (e.g. histograms
/// compiled out).
pub fn latency_fields(h: &Histogram) -> Json {
    if h.count() == 0 {
        return Json::Obj(Vec::new());
    }
    Json::obj([
        ("count", Json::Num(h.count() as f64)),
        ("p50", Json::Num(h.quantile(0.50) as f64)),
        ("p90", Json::Num(h.quantile(0.90) as f64)),
        ("p99", Json::Num(h.quantile(0.99) as f64)),
        ("p999", Json::Num(h.quantile(0.999) as f64)),
        ("max", Json::Num(h.max_ns as f64)),
    ])
}

/// Format a row of cells with the given column widths (right-aligned
/// numerics look best for the paper-style tables).
pub fn row(cells: &[String], widths: &[usize]) -> String {
    let mut out = String::new();
    for (i, c) in cells.iter().enumerate() {
        let w = widths.get(i).copied().unwrap_or(12);
        out.push_str(&format!("{c:>w$}  "));
    }
    out.trim_end().to_string()
}

/// A horizontal rule matching `widths`.
pub fn rule(widths: &[usize]) -> String {
    let total: usize = widths.iter().map(|w| w + 2).sum();
    "-".repeat(total.saturating_sub(2))
}

/// Render a simple ASCII sparkline-style bar of `value` against `max`.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_is_aligned() {
        let s = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(s, "  a    bb");
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10), "##########", "clamped at width");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }

    #[test]
    fn json_flag_both_spellings() {
        let (rest, p) = json_flag(
            ["--smoke", "--json", "out.json"].iter().map(|s| s.to_string()),
        );
        assert_eq!(rest, vec!["--smoke".to_string()]);
        assert_eq!(p.unwrap().to_str(), Some("out.json"));
        let (rest, p) = json_flag(["--json=x.json"].iter().map(|s| s.to_string()));
        assert!(rest.is_empty());
        assert_eq!(p.unwrap().to_str(), Some("x.json"));
        let (_, p) = json_flag(std::iter::empty());
        assert!(p.is_none());
    }

    #[test]
    fn report_roundtrips_through_parser() {
        let mut r = JsonReport::new("unit");
        r.meta("budget_ms", Json::Num(100.0));
        r.mode("null/inline", num_fields(&[("ns_per_call", 68.5)]));
        let text = r.to_json().to_string();
        let back = Json::parse(&text).expect("self-produced JSON parses");
        assert_eq!(back.get("bench").unwrap().as_str(), Some("unit"));
        assert_eq!(
            back.get("schema_version").unwrap().as_u64(),
            Some(ppc_rt::export::SCHEMA_VERSION),
            "every bench artifact is stamped with the exporter schema version"
        );
        assert!(ppc_rt::export::check_schema_version(&back, "unit report"));
        let mode = back.get("modes").unwrap().get("null/inline").unwrap();
        assert_eq!(mode.get("ns_per_call").unwrap().as_f64(), Some(68.5));
    }

    #[test]
    fn latency_fields_reports_percentiles() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(1_000);
        }
        let j = latency_fields(&h);
        assert_eq!(j.get("count").unwrap().as_u64(), Some(100));
        // Identical samples land in the [512, 1023] log2 bucket; the
        // interpolated quantiles stay inside it and never exceed max.
        let p50 = j.get("p50").unwrap().as_u64().unwrap();
        let p999 = j.get("p999").unwrap().as_u64().unwrap();
        assert!((512..=1_000).contains(&p50), "p50 {p50} within bucket, <= max");
        assert!(p999 >= p50 && p999 <= 1_000, "p999 {p999} ordered and <= max");
        assert_eq!(latency_fields(&Histogram::new()), Json::Obj(Vec::new()));
    }

    #[test]
    fn host_topology_fields_are_sane() {
        let cores = host_cores();
        let allowed = cpus_allowed();
        assert!(cores >= 1);
        assert!((1..=cores).contains(&allowed), "affinity mask within host cores");
        let r = JsonReport::new("unit");
        let doc = r.to_json();
        assert_eq!(doc.get("host_cores").unwrap().as_u64(), Some(cores as u64));
        assert!(doc.get("host_parallelism").unwrap().as_u64().unwrap() >= 1);
        assert_eq!(doc.get("cpus_allowed").unwrap().as_u64(), Some(allowed as u64));
    }
}
