//! Figure 3: GetLength throughput against one file server.
//!
//! "The solid curve shows the throughput in the case that independent
//! clients issue the GetLength request to different files (but to the same
//! server). This figure clearly shows linear increase in throughput [...]
//! The dashed line shows the throughput of clients concurrently making
//! GetLength requests for a single common file. In this case the
//! throughput saturates at four processors."
//!
//! Method: the per-call costs are *measured* on the cycle simulator (a
//! warm Bob GetLength PPC call on each client CPU, split into its local
//! part and its per-file critical section), then replayed on the
//! discrete-event engine where the per-file lock is a contended resource.

use hector_sim::des::{Des, Segment, SegmentLoopActor};
use hector_sim::time::Cycles;
use hector_sim::{CpuId, MachineConfig};
use ppc_core::bob::{boot_with_bob, Bob};
use ppc_core::PpcSystem;

/// Per-CPU measured costs of one GetLength call.
#[derive(Clone, Copy, Debug)]
pub struct CallCosts {
    /// Work outside the per-file critical section (IPC + lookup + reply).
    pub local: Cycles,
    /// The critical-section body (file accounting update).
    pub cs: Cycles,
    /// Full warm round trip (diagnostics; `local + cs + lock overhead`).
    pub total: Cycles,
}

/// One point of the Figure-3 curves.
#[derive(Clone, Copy, Debug)]
pub struct Fig3Row {
    /// Number of client processors.
    pub n: usize,
    /// Ideal throughput assuming perfect speedup (calls/second).
    pub ideal: f64,
    /// Measured throughput, each client using its own file.
    pub different_files: f64,
    /// Measured throughput, all clients sharing one file.
    pub single_file: f64,
}

fn warm_calls(sys: &mut PpcSystem, bob: &Bob, cpu: CpuId, client: usize, h: usize, n: usize) {
    for _ in 0..n {
        bob.get_length(sys, cpu, client, h).expect("warm GetLength");
    }
}

/// Measure the warm GetLength costs for a client on `cpu` against the file
/// `h` (homed wherever it was created) in a fresh `n_cpus` system.
pub fn measure_call_costs(n_cpus: usize, cpu: CpuId, file_home: usize) -> CallCosts {
    let (mut sys, bob, _) = boot_with_bob(MachineConfig::hector(n_cpus), 0);
    let h = bob.create_file(&mut sys, "bench", 4096, file_home);
    let prog = sys.kernel.new_program_id();
    let client = sys.new_client(cpu, prog);
    warm_calls(&mut sys, &bob, cpu, client, h, 4);

    // Full warm round trip.
    let t0 = sys.kernel.machine.cpu(cpu).clock();
    bob.get_length(&mut sys, cpu, client, h).unwrap();
    let total = sys.kernel.machine.cpu(cpu).clock() - t0;

    // Critical-section body alone (the part that holds the lock).
    let fs = bob.fs.borrow();
    let c = sys.kernel.machine.cpu_mut(cpu);
    let t1 = c.clock();
    fs.cs_body(c, h);
    let cs = c.clock() - t1;

    // Lock-word overhead alone (replayed by the DES, so excluded here).
    let t2 = c.clock();
    fs.uncontended_lock(c, h);
    let lock = c.clock() - t2;

    let local = total.saturating_sub(cs + lock);
    CallCosts { local, cs, total }
}

/// The sequential base time of one GetLength call in microseconds (the
/// paper reports 66 µs, half IPC and half file system).
pub fn sequential_base_us() -> f64 {
    measure_call_costs(1, 0, 0).total.as_us()
}

/// Run the Figure-3 experiment for 1..=`max_cpus` client processors,
/// simulating `sim_us` microseconds per point.
pub fn run(max_cpus: usize, sim_us: f64) -> Vec<Fig3Row> {
    let deadline = Cycles::from_us(sim_us);
    let horizon = deadline + Cycles::from_us(1000.0);
    let mut rows = Vec::new();

    // Per-CPU costs in the full 16-way machine (NUMA distances matter).
    let shared_costs: Vec<CallCosts> =
        (0..max_cpus).map(|c| measure_call_costs(max_cpus, c, 0)).collect();
    let own_costs: Vec<CallCosts> =
        (0..max_cpus).map(|c| measure_call_costs(max_cpus, c, c)).collect();

    let rate_1 = {
        // Throughput of one client on its own file = ideal slope.
        let per_call = own_costs[0].total;
        1e6 / per_call.as_us()
    };

    for n in 1..=max_cpus {
        // --- different files: per-client file and per-client lock -------
        let mut des = Des::new(MachineConfig::hector(max_cpus));
        for (c, costs) in own_costs.iter().copied().enumerate().take(n) {
            let lock = des.add_lock(c);
            des.add_actor(
                c,
                SegmentLoopActor::new(
                    vec![
                        Segment::Busy(costs.local),
                        Segment::Acquire(lock),
                        Segment::Busy(costs.cs),
                        Segment::Release(lock),
                    ],
                    deadline,
                ),
                Cycles(17 * c as u64),
            );
        }
        des.run_until(horizon);
        let diff_total: u64 = des.actors().iter().map(|a| a.completed).sum();

        // --- single file: one shared lock homed with the file -----------
        let mut des = Des::new(MachineConfig::hector(max_cpus));
        let lock = des.add_lock(0);
        for (c, costs) in shared_costs.iter().copied().enumerate().take(n) {
            des.add_actor(
                c,
                SegmentLoopActor::new(
                    vec![
                        Segment::Busy(costs.local),
                        Segment::Acquire(lock),
                        Segment::Busy(costs.cs),
                        Segment::Release(lock),
                    ],
                    deadline,
                ),
                Cycles(17 * c as u64),
            );
        }
        des.run_until(horizon);
        let single_total: u64 = des.actors().iter().map(|a| a.completed).sum();

        let secs = deadline.as_secs();
        rows.push(Fig3Row {
            n,
            ideal: rate_1 * n as f64,
            different_files: diff_total as f64 / secs,
            single_file: single_total as f64 / secs,
        });
    }
    rows
}

/// Robustness variant: the single-file experiment with per-iteration
/// compute jitter (clients do not arrive in lockstep). The saturation
/// conclusion must not depend on the deterministic stagger.
pub fn run_single_file_jittered(
    max_cpus: usize,
    sim_us: f64,
    jitter_pct: u64,
    seed: u64,
) -> Vec<(usize, f64)> {
    use hector_sim::des::JitterLoopActor;
    let deadline = Cycles::from_us(sim_us);
    let horizon = deadline + Cycles::from_us(1000.0);
    let shared_costs: Vec<CallCosts> =
        (0..max_cpus).map(|c| measure_call_costs(max_cpus, c, 0)).collect();
    (1..=max_cpus)
        .map(|n| {
            let mut des: Des<JitterLoopActor> = Des::new(MachineConfig::hector(max_cpus));
            let lock = des.add_lock(0);
            for (c, costs) in shared_costs.iter().enumerate().take(n) {
                des.add_actor(
                    c,
                    JitterLoopActor::new(
                        vec![
                            Segment::Busy(costs.local),
                            Segment::Acquire(lock),
                            Segment::Busy(costs.cs),
                            Segment::Release(lock),
                        ],
                        deadline,
                        jitter_pct,
                        seed.wrapping_add(c as u64),
                    ),
                    Cycles(17 * c as u64),
                );
            }
            des.run_until(horizon);
            let total: u64 = des.actors().iter().map(|a| a.completed).sum();
            (n, total as f64 / deadline.as_secs())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_time_near_66us() {
        let us = sequential_base_us();
        assert!((45.0..90.0).contains(&us), "sequential GetLength: {us:.1} us (paper: 66)");
    }

    #[test]
    fn cs_is_small_fraction_of_call() {
        let c = measure_call_costs(16, 3, 0);
        assert!(c.cs.as_u64() * 3 < c.local.as_u64(), "cs {} local {}", c.cs, c.local);
    }

    #[test]
    fn saturation_is_robust_to_arrival_jitter() {
        let rows = run_single_file_jittered(12, 25_000.0, 25, 42);
        let r1 = rows[0].1;
        let r12 = rows[11].1;
        let peak = rows.iter().map(|(_, t)| *t).fold(0.0f64, f64::max);
        assert!(peak / r1 < 6.5, "jittered peak speedup {:.2}", peak / r1);
        assert!(r12 / r1 < 5.0, "still saturated at 12 cpus: {:.2}", r12 / r1);
    }

    #[test]
    fn different_files_scale_linearly_and_single_saturates() {
        let rows = run(16, 30_000.0);
        let r1 = &rows[0];
        let r8 = &rows[7];
        let r16 = &rows[15];
        // Linear speedup for different files (within 10%).
        let s8 = r8.different_files / r1.different_files;
        let s16 = r16.different_files / r1.different_files;
        assert!(s8 > 7.2, "8-cpu speedup {s8:.2}");
        assert!(s16 > 14.4, "16-cpu speedup {s16:.2}");
        // Single file saturates: 16-cpu throughput below 6x the base and
        // no better than the 6-cpu point by more than 20%.
        let sat16 = r16.single_file / r1.single_file;
        assert!(sat16 < 6.0, "single-file 16-cpu speedup {sat16:.2} (paper: ~4)");
        let r6 = &rows[5];
        assert!(r16.single_file < r6.single_file * 1.2, "flat after the knee");
    }
}
