//! # ppc-bench — the benchmark harness
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! | binary | paper artefact |
//! |---|---|
//! | `figure2` | Figure 2 — PPC round-trip breakdown, 8 conditions |
//! | `figure3` | Figure 3 — GetLength throughput vs. processors |
//! | `table_uniprocessor` | §1 uniprocessor IPC comparison table |
//! | `fastpath_footprint` | §5 "200 instructions and 6 cache lines" |
//! | `ablation_locks` | lock-free PPC vs locked-pool / LRPC / message RPC |
//! | `rt_scaling` | real-threads port scalability |
//!
//! Criterion benches of the same harnesses live under `benches/`.

pub mod ablation;
pub mod fig3;
pub mod gate;
pub mod report;
