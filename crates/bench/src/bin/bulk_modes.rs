//! Bulk-transfer mode matrix for the real-threads runtime: the
//! **memcpy-through-mailbox** baseline (`call_with_payload`, ≤4 KB scratch
//! chunks) vs. the grant-backed payload plane — **bulk-copy** (server
//! copies through a pooled buffer) and **bulk-zerocopy**
//! (`with_bulk_mut` in place, no payload bytes move at all).
//!
//! Run: `cargo run -p ppc-bench --release --bin bulk_modes`
//! CI:  `cargo run -p ppc-bench --release --bin bulk_modes -- --smoke`
//! JSON: `cargo run -p ppc-bench --release --bin bulk_modes -- --json BENCH_BULKMODES.json`
//!
//! The task is identical across modes: the client owns `size` bytes, the
//! server must observe and stamp them, and the (stamped) bytes must end
//! up back in the client's buffer. The server's application work is O(1)
//! (stamp the payload header), and every mode uses inline dispatch, so
//! the entire difference between columns is **transport**: the mailbox
//! path pays one payload copy into the scratch page, one back out into a
//! response `Vec`, and one client-side copy into the destination buffer
//! *per 4 KB chunk*, while the bulk paths ride a one-word descriptor in
//! the ordinary 8-word frame — the client's region *is* the buffer, so
//! zerocopy moves nothing (bulk-copy keeps the two pooled-buffer copies
//! by definition; it bounds what a server that must privatize pays).
//!
//! The ISSUE-2 acceptance gate reads off the ratio columns: pooled
//! zero-copy ≥2× over mailbox at 4 KiB and ≥5× at 64 KiB.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ppc_bench::report;
use ppc_rt::{EntryOptions, Runtime};

/// The scratch page bounds one mailbox chunk.
const MAILBOX_CHUNK: usize = 4 << 10;

/// The server's application work, identical across modes: observe and
/// stamp the payload header. O(1) by design — the matrix isolates
/// transport cost, not per-byte compute (a server that scans every byte
/// converges all modes toward the scan).
fn stamp(bytes: &mut [u8]) {
    if let Some(b) = bytes.first_mut() {
        *b = b.wrapping_add(1);
    }
}

/// Mean ns per operation of `f`: minimum over `trials` trials of
/// ~`budget_ms` each (after warmup). Interference only ever adds time, so
/// the smallest trial is closest to the true cost.
fn measure(budget_ms: u64, trials: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..20 {
        f();
    }
    let budget = Duration::from_millis(budget_ms);
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let t0 = Instant::now();
        let mut iters = 0u64;
        while t0.elapsed() < budget {
            for _ in 0..8 {
                f();
            }
            iters += 8;
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// Mailbox baseline: move `size` bytes per transfer through
/// `call_with_payload` in ≤4 KB chunks. Each chunk is copied into the
/// scratch page, stamped, copied back out as the response `Vec`, and the
/// client lands it in its destination buffer — the full obligation of a
/// transport whose server can only see shipped bytes.
fn mailbox_mode(size: usize, budget_ms: u64, trials: usize) -> (f64, String, report::Json) {
    let rt = Runtime::new(1);
    let ep = rt
        .bind(
            "mailbox",
            EntryOptions { inline_ok: true, ..Default::default() },
            Arc::new(|ctx| {
                let n = ctx.args[0] as usize;
                stamp(&mut ctx.scratch()[..n]);
                let mut rets = [0u64; 8];
                rets[7] = n as u64; // echo the chunk back out
                rets
            }),
        )
        .unwrap();
    let client = rt.client(0, 1);
    let payload = vec![7u8; size.min(MAILBOX_CHUNK)];
    let mut dst = vec![0u8; size];
    let before = rt.stats.snapshot();
    let ns = measure(budget_ms, trials, || {
        let mut moved = 0usize;
        while moved < size {
            let n = (size - moved).min(MAILBOX_CHUNK);
            let mut args = [0u64; 8];
            args[0] = n as u64;
            let (_rets, resp) =
                client.call_with_payload(ep, args, &payload[..n]).unwrap();
            dst[moved..moved + n].copy_from_slice(&resp);
            moved += n;
        }
        std::hint::black_box(&mut dst);
    });
    let json = mode_json(size, ns, &rt);
    (ns, rt.stats.snapshot().since(&before).to_string(), json)
}

/// The grant-backed modes. `zerocopy` selects `with_bulk_mut` in place;
/// otherwise the server copies the span into a pooled buffer, works on
/// it, and copies it back (CopyFrom + CopyTo through the vectored
/// engine).
fn bulk_mode(
    size: usize,
    zerocopy: bool,
    budget_ms: u64,
    trials: usize,
) -> (f64, String, report::Json) {
    let rt = Runtime::new(1);
    let bulk = Arc::clone(rt.bulk());
    let stats = Arc::clone(&rt.stats);
    let ep = rt
        .bind(
            if zerocopy { "bulk-zerocopy" } else { "bulk-copy" },
            EntryOptions { inline_ok: true, ..Default::default() },
            Arc::new(move |ctx| {
                let desc = ctx.bulk_desc().unwrap();
                let n = if zerocopy {
                    ctx.with_bulk_mut(desc, |bytes| {
                        stamp(bytes);
                        bytes.len()
                    })
                    .unwrap()
                } else {
                    let mut buf = bulk
                        .pool(ctx.vcpu)
                        .take(desc.len as usize, stats.cell(ctx.vcpu))
                        .expect("span within the top size class");
                    let scratch = &mut buf.as_mut_slice()[..desc.len as usize];
                    let n = ctx.copy_from(desc, scratch).unwrap();
                    stamp(scratch);
                    let n2 = ctx.copy_to(desc, scratch).unwrap();
                    debug_assert_eq!(n, n2);
                    bulk.pool(ctx.vcpu).put(buf);
                    n
                };
                [n as u64, 0, 0, 0, 0, 0, 0, 0]
            }),
        )
        .unwrap();
    let client = rt.client(0, 1);
    let region = client.bulk_register(size).unwrap();
    region.fill(0, &vec![7u8; size]).unwrap();
    region.grant(ep, true).unwrap();
    let desc = region.full_desc(true);
    let before = rt.stats.snapshot();
    let ns = measure(budget_ms, trials, || {
        let rets = client.call_bulk(ep, [0; 8], desc).unwrap();
        std::hint::black_box(rets);
    });
    let json = mode_json(size, ns, &rt);
    (ns, rt.stats.snapshot().since(&before).to_string(), json)
}

/// One mode's JSON row: throughput plus the runtime's own sampled
/// end-to-end call distribution for the run.
fn mode_json(size: usize, ns: f64, rt: &Runtime) -> report::Json {
    report::Json::Obj(vec![
        ("ns_per_transfer".to_string(), report::Json::Num(ns)),
        ("mb_per_s".to_string(), report::Json::Num(mbps(size, ns))),
        (
            "latency_ns".to_string(),
            report::latency_fields(&rt.obs().merged(report::LatencyKind::Call)),
        ),
    ])
}

fn fmt_size(size: usize) -> String {
    if size >= 1 << 20 {
        format!("{} MiB", size >> 20)
    } else if size >= 1 << 10 {
        format!("{} KiB", size >> 10)
    } else {
        format!("{size} B")
    }
}

fn mbps(size: usize, ns: f64) -> f64 {
    (size as f64 / (ns * 1e-9)) / 1e6
}

fn main() {
    let (args, json_path) = report::json_flag(std::env::args().skip(1));
    let mut json = report::JsonReport::new("bulk_modes");
    let smoke = args.iter().any(|a| a == "--smoke");
    json.meta("smoke", report::Json::Bool(smoke));
    let (sizes, budget_ms, trials): (&[usize], u64, usize) = if smoke {
        (&[64, 4 << 10], 15, 2)
    } else {
        (&[64, 1 << 10, 4 << 10, 64 << 10, 256 << 10, 1 << 20], 100, 5)
    };

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "Bulk-transfer mode matrix ({cores} host core(s)); ns/transfer, inline dispatch"
    );
    println!();
    let widths = [9, 11, 11, 11, 8, 8, 11];
    println!(
        "{}",
        report::row(
            &[
                "size".into(),
                "mailbox".into(),
                "copy".into(),
                "zerocopy".into(),
                "copy×".into(),
                "zero×".into(),
                "zero MB/s".into(),
            ],
            &widths
        )
    );
    println!("{}", report::rule(&widths));

    let mut details: Vec<String> = Vec::new();
    for &size in sizes {
        let (mb_ns, mb_d, mb_j) = mailbox_mode(size, budget_ms, trials);
        let (cp_ns, cp_d, cp_j) = bulk_mode(size, false, budget_ms, trials);
        let (zc_ns, zc_d, zc_j) = bulk_mode(size, true, budget_ms, trials);
        let label = fmt_size(size);
        for (mode, j) in [("mailbox", mb_j), ("copy", cp_j), ("zerocopy", zc_j)] {
            let report::Json::Obj(fields) = j else { unreachable!() };
            json.mode(&format!("{label}/{mode}"), fields);
        }
        println!(
            "{}",
            report::row(
                &[
                    label.clone(),
                    format!("{mb_ns:.0}"),
                    format!("{cp_ns:.0}"),
                    format!("{zc_ns:.0}"),
                    format!("{:.1}", mb_ns / cp_ns),
                    format!("{:.1}", mb_ns / zc_ns),
                    format!("{:.0}", mbps(size, zc_ns)),
                ],
                &widths
            )
        );
        details.push(format!("[{label}] mailbox:  {mb_d}"));
        details.push(format!("[{label}] copy:     {cp_d}"));
        details.push(format!("[{label}] zerocopy: {zc_d}"));
    }

    println!();
    println!("mode attribution (per-run stats snapshots):");
    for d in details {
        println!("  {d}");
    }

    if smoke {
        // Functional gate for CI: a quick correctness pass over every
        // mode (the perf ratios are asserted only in EXPERIMENTS runs —
        // shared CI runners are too noisy to gate on).
        let rt = Runtime::new(1);
        let ep = rt
            .bind(
                "check",
                EntryOptions { inline_ok: true, ..Default::default() },
                Arc::new(|ctx| {
                    let desc = ctx.bulk_desc().unwrap();
                    let n = ctx
                        .with_bulk_mut(desc, |b| {
                            stamp(b);
                            b.len()
                        })
                        .unwrap();
                    [n as u64, 0, 0, 0, 0, 0, 0, 0]
                }),
            )
            .unwrap();
        let client = rt.client(0, 1);
        let region = client.bulk_register(4 << 10).unwrap();
        region.fill(0, &[1u8; 4 << 10]).unwrap();
        region.grant(ep, true).unwrap();
        let rets = client.call_bulk(ep, [0; 8], region.full_desc(true)).unwrap();
        assert_eq!(rets[0] as usize, 4 << 10);
        let mut out = [0u8; 4 << 10];
        region.read_into(0, &mut out).unwrap();
        assert!(out.iter().enumerate().all(|(i, b)| *b == if i == 0 { 2 } else { 1 }));
        println!();
        println!("smoke: OK");
    }
    json.write_if(&json_path);
}
