//! Ablation: eager multi-page stack mapping vs. lazy page-fault growth.
//!
//! §4.5.4 sketches both designs for stacks beyond one page: map "some
//! fixed multiple of the page size" eagerly on every call, or "assign a
//! larger virtual space for the stack \[where\] accesses beyond the first
//! page result in a page fault", keeping "the common case fast and only
//! penaliz\[ing\] those servers that require the extra space". This sweep
//! shows the crossover.
//!
//! Run: `cargo run -p ppc-bench --bin ablation_stack_policy`

use std::rc::Rc;

use hector_sim::MachineConfig;
use ppc_bench::report;
use ppc_core::{PpcSystem, ServiceSpec};

const LIMIT_PAGES: usize = 4;

fn build(lazy: bool) -> (PpcSystem, usize, usize) {
    let mut sys = PpcSystem::boot(MachineConfig::hector(1));
    let asid = sys.kernel.create_space("svc");
    let mut spec = ServiceSpec::new(asid).stack_pages(LIMIT_PAGES);
    if lazy {
        spec = spec.lazy_stack();
    }
    let ep = sys
        .bind_entry_boot(
            spec,
            Rc::new(|s: &mut PpcSystem, ctx| {
                s.touch_worker_stack(ctx, ctx.args[0]).expect("within limit");
                [0; 8]
            }),
        )
        .unwrap();
    let prog = sys.kernel.new_program_id();
    let client = sys.new_client(0, prog);
    (sys, ep, client)
}

fn warm_us(sys: &mut PpcSystem, ep: usize, client: usize, bytes: u64) -> f64 {
    for _ in 0..3 {
        sys.call(0, client, ep, [bytes, 0, 0, 0, 0, 0, 0, 0]).unwrap();
    }
    let t = sys.kernel.machine.cpu(0).clock();
    sys.call(0, client, ep, [bytes, 0, 0, 0, 0, 0, 0, 0]).unwrap();
    (sys.kernel.machine.cpu(0).clock() - t).as_us()
}

fn main() {
    let (_rest, json_path) = report::json_flag(std::env::args().skip(1));
    let mut json = report::JsonReport::new("ablation_stack_policy");
    println!("Stack policy ablation: {LIMIT_PAGES}-page service, warm call cost vs. stack use\n");
    let widths = [12, 12, 12, 10];
    println!(
        "{}",
        report::row(
            &["stack used".into(), "eager us".into(), "lazy us".into(), "winner".into()],
            &widths
        )
    );
    println!("{}", report::rule(&widths));
    for bytes in [256u64, 1024, 4096, 8192, 12288, 16384] {
        let (mut eager, ep_e, cl_e) = build(false);
        let (mut lazy, ep_l, cl_l) = build(true);
        let e = warm_us(&mut eager, ep_e, cl_e, bytes);
        let l = warm_us(&mut lazy, ep_l, cl_l, bytes);
        json.mode(
            &format!("{bytes}B"),
            report::num_fields(&[("eager_us", e), ("lazy_us", l)]),
        );
        println!(
            "{}",
            report::row(
                &[
                    format!("{bytes}B"),
                    format!("{e:.1}"),
                    format!("{l:.1}"),
                    if l < e { "lazy" } else { "eager" }.into(),
                ],
                &widths
            )
        );
    }
    println!();
    println!("paper (§4.5.4): lazy growth \"would keep the common case fast and only");
    println!("penalize those servers that require the extra space (which are likely");
    println!("to execute longer and more easily amortize the cost of the page-fault)\".");
    json.write_if(&json_path);
}
