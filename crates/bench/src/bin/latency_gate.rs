//! The CI latency gate binary: replay the rt/bulk/ring matrices
//! against the committed `BENCH_*.json` baselines and exit non-zero on
//! tail regression (see `ppc_bench::gate` for the tolerance model).
//!
//! Run:  `cargo run -p ppc-bench --release --bin latency_gate`
//! CI:   `cargo run -p ppc-bench --release --bin latency_gate -- --smoke`
//! JSON: `... --json BENCH_LATENCY_GATE.json`
//! Baselines are read from `--baseline-dir <dir>` (default `.`, the
//! repo root in CI). A missing baseline file or mode is *skipped*, not
//! failed: a new mode starts gating itself the moment its baseline is
//! committed.
//!
//! Unlike the bench bins (whose distributions come from the runtime's
//! 1/128-sampled histogram plane), the gate times **every call** into a
//! private histogram, so the p999 and max columns are exact — a single
//! 80 µs park convoy in 40k calls is visible, which is precisely the
//! event the gate exists to catch. On violation the runtime's
//! diagnostics (PR-4 flight recorder + tail exemplars, with per-phase
//! breakdowns) are dumped to stderr so CI logs attribute the
//! regression by phase without a re-run.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use ppc_bench::gate::{self, Tolerance, Violation};
use ppc_bench::report::{self, Json};
use ppc_rt::{EntryOptions, Handler, QosClass, RingOptions, RtError, Runtime, SpinPolicy};

/// Busy-wait handler of roughly `ns` nanoseconds of service time.
fn busy_handler(ns: u64) -> Handler {
    Arc::new(move |ctx| {
        if ns > 0 {
            let t0 = Instant::now();
            while (t0.elapsed().as_nanos() as u64) < ns {
                std::hint::spin_loop();
            }
        }
        ctx.args
    })
}

/// Time `calls` null calls one by one into an exact histogram.
fn null_mode(
    opts: EntryOptions,
    policy: SpinPolicy,
    calls: u64,
) -> (report::Histogram, Arc<Runtime>) {
    let rt = Runtime::new(1);
    rt.set_spin_policy(policy);
    let ep = rt.bind("gate-null", opts, busy_handler(0)).unwrap();
    let client = rt.client(0, 1);
    for _ in 0..200 {
        client.call(ep, [0; 8]).unwrap();
    }
    let mut h = report::Histogram::new();
    for i in 0..calls {
        let t0 = Instant::now();
        std::hint::black_box(client.call(ep, std::hint::black_box([i; 8])).unwrap());
        h.record(t0.elapsed().as_nanos() as u64);
    }
    (h, rt)
}

/// Time `calls` grant-backed bulk-copy calls of `size` bytes (the
/// `bulk_modes` copy-mode handler: privatize into a pooled buffer,
/// stamp, copy back).
fn bulk_copy_mode(size: usize, calls: u64) -> (report::Histogram, Arc<Runtime>) {
    let rt = Runtime::new(1);
    let bulk = Arc::clone(rt.bulk());
    let stats = Arc::clone(&rt.stats);
    let ep = rt
        .bind(
            "gate-bulk",
            EntryOptions { inline_ok: true, ..Default::default() },
            Arc::new(move |ctx| {
                let desc = ctx.bulk_desc().unwrap();
                let mut buf = bulk
                    .pool(ctx.vcpu)
                    .take(desc.len as usize, stats.cell(ctx.vcpu))
                    .expect("span within the top size class");
                let scratch = &mut buf.as_mut_slice()[..desc.len as usize];
                let n = ctx.copy_from(desc, scratch).unwrap();
                if let Some(b) = scratch.first_mut() {
                    *b = b.wrapping_add(1);
                }
                let n2 = ctx.copy_to(desc, scratch).unwrap();
                debug_assert_eq!(n, n2);
                bulk.pool(ctx.vcpu).put(buf);
                [n as u64, 0, 0, 0, 0, 0, 0, 0]
            }),
        )
        .unwrap();
    let client = rt.client(0, 1);
    let region = client.bulk_register(size).unwrap();
    region.fill(0, &vec![7u8; size]).unwrap();
    region.grant(ep, true).unwrap();
    let desc = region.full_desc(true);
    for _ in 0..20 {
        client.call_bulk(ep, [0; 8], desc).unwrap();
    }
    let mut h = report::Histogram::new();
    for _ in 0..calls {
        let t0 = Instant::now();
        std::hint::black_box(client.call_bulk(ep, [0; 8], desc).unwrap());
        h.record(t0.elapsed().as_nanos() as u64);
    }
    (h, rt)
}

/// Replay the `ring_modes` open loop (1 µs Latency service, every 8th
/// arrival a 4 µs Bulk-class entry) at `rate_per_s` for `run_ms`,
/// recording exact per-completion sojourn — overall and for the
/// Latency class alone.
fn ring_sojourn(
    rate_per_s: f64,
    run_ms: u64,
) -> (report::Histogram, report::Histogram, Arc<Runtime>) {
    let rt = Runtime::new(1);
    let ep = rt.bind("gate-ring", EntryOptions::default(), busy_handler(1_000)).unwrap();
    let bulk_ep = rt
        .bind(
            "gate-ring-bulk",
            EntryOptions { qos: QosClass::Bulk, ..Default::default() },
            busy_handler(4_000),
        )
        .unwrap();
    let client = rt.client(0, 1);
    let mut ring = client.ring_with(RingOptions { sq_depth: 64, cq_depth: 64, credits: 64 });
    let mean_ns = 1e9 / rate_per_s;
    let mut lcg: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut next_exp = move || -> u64 {
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let u = ((lcg >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
        (-mean_ns * (1.0 - u).ln()).round() as u64
    };
    let mut sojourn = report::Histogram::new();
    let mut sojourn_lat = report::Histogram::new();
    let mut out: Vec<ppc_rt::Completion> = Vec::with_capacity(64);
    let mut offered = 0u64;
    let run_ns = run_ms * 1_000_000;
    let t0 = Instant::now();
    let mut next_arrival = next_exp();
    loop {
        let now = t0.elapsed().as_nanos() as u64;
        if now >= run_ns {
            break;
        }
        let mut submitted = false;
        while next_arrival <= now {
            offered += 1;
            next_arrival += next_exp();
            let target = if offered.is_multiple_of(8) { bulk_ep } else { ep };
            match ring.submit(target, [0; 8], now) {
                Ok(()) => submitted = true,
                Err(RtError::RingFull) => {}
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
        if submitted {
            ring.doorbell();
        }
        if ring.reap(64, &mut out) > 0 {
            let now = t0.elapsed().as_nanos() as u64;
            for c in out.drain(..) {
                c.result.expect("gate entries stay live");
                let s = now.saturating_sub(c.user);
                sojourn.record(s);
                if c.ep == ep {
                    sojourn_lat.record(s);
                }
            }
        } else if !submitted {
            std::thread::yield_now();
        }
    }
    ring.drain(&mut out);
    let tail = t0.elapsed().as_nanos() as u64;
    for c in out.drain(..) {
        let s = tail.saturating_sub(c.user);
        sojourn.record(s);
        if c.ep == ep {
            sojourn_lat.record(s);
        }
    }
    drop(ring);
    (sojourn, sojourn_lat, rt)
}

/// Gate one measured mode, record it in the artifact, dump diagnostics
/// on violation, and accumulate.
#[allow(clippy::too_many_arguments)]
fn gate_mode(
    json: &mut report::JsonReport,
    violations: &mut Vec<Violation>,
    gated: &mut usize,
    mode: &str,
    field: &str,
    h: &report::Histogram,
    baseline: &Json,
    tol: &Tolerance,
    rt: &Runtime,
) {
    let mut measured = report::latency_fields(h);
    // A tail quantile needs sample support to mean anything: with n
    // below ~2/(1−q) the estimate degenerates to the max sample, and
    // gating it would re-run the max check under a tighter tolerance
    // (the 200-call 1 MiB matrix would fail on any single hypervisor
    // preemption). Strip unsupported quantiles; `check` skips missing
    // fields, and the exact max is always gated.
    if let Json::Obj(fields) = &mut measured {
        let n = h.count();
        fields.retain(|(k, _)| match k.as_str() {
            "p999" => n >= 2_000,
            "p99" => n >= 200,
            _ => true,
        });
    }
    let v = gate::check(mode, &measured, baseline, tol);
    let verdict = if v.is_empty() { "ok" } else { "VIOLATION" };
    println!(
        "gate: {mode:<24} {field:<12} count={:<8} p99={:<8} p999={:<8} max={:<10} {verdict}",
        h.count(),
        h.quantile(0.99),
        h.quantile(0.999),
        h.max_ns,
    );
    let mut fields = vec![
        (field.to_string(), measured),
        ("violations".to_string(), Json::Num(v.len() as f64)),
    ];
    if !v.is_empty() {
        // Before blaming the runtime, measure the box: a clock-gap
        // probe right after the violation says how much of this
        // machine's time was going to *someone else* (CI neighbors,
        // the hypervisor). A high ratio re-attributes the tail.
        let probe = ppc_rt::telemetry::interference_probe(std::time::Duration::from_millis(5));
        eprintln!(
            "-- interference probe for {mode}: {:.2}% time lost, {} excursion(s), worst {} ns --",
            probe.ratio() * 100.0,
            probe.excursions,
            probe.max_excursion_ns,
        );
        fields.push(("interference_ratio".to_string(), Json::Num(probe.ratio())));
        eprintln!("-- diagnostics for {mode} (tail exemplars attribute by phase) --");
        rt.dump_diagnostics();
        // Freeze the full postmortem for CI artifact upload.
        let dir = std::env::var_os("PPC_BLACKBOX_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."));
        let _ = std::fs::create_dir_all(&dir);
        let fname: String = mode
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        let path = dir.join(format!("blackbox-gate-{fname}.json"));
        match rt.write_blackbox(&format!("latency-gate:{mode}"), &path) {
            Ok(()) => eprintln!("black box written: {}", path.display()),
            Err(e) => eprintln!("black-box write to {} failed: {e}", path.display()),
        }
    }
    json.mode(mode, fields);
    violations.extend(v);
    *gated += 1;
}

fn main() -> ExitCode {
    let (args, json_path) = report::json_flag(std::env::args().skip(1));
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut baseline_dir = PathBuf::from(".");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--baseline-dir" {
            if let Some(d) = it.next() {
                baseline_dir = PathBuf::from(d);
            }
        } else if let Some(d) = a.strip_prefix("--baseline-dir=") {
            baseline_dir = PathBuf::from(d);
        }
    }
    let tol = if smoke { Tolerance::smoke() } else { Tolerance::full() };
    let mut json = report::JsonReport::new("latency_gate");
    json.meta("smoke", Json::Bool(smoke));
    let mut violations: Vec<Violation> = Vec::new();
    let mut gated = 0usize;
    println!(
        "latency gate ({} host core(s), {} schedulable; {})",
        report::host_cores(),
        report::cpus_allowed(),
        if smoke { "smoke tolerances" } else { "full tolerances" },
    );

    // -------- rt matrix: exact-timed null calls --------
    let calls: u64 = if smoke { 8_000 } else { 40_000 };
    match gate::load_baseline(&baseline_dir, "BENCH_RTMODES.json") {
        Some(base) => {
            let rt_modes: [(&str, EntryOptions, SpinPolicy); 4] = [
                (
                    "null/inline",
                    EntryOptions { inline_ok: true, ..Default::default() },
                    SpinPolicy::Adaptive,
                ),
                ("null/spin", EntryOptions::default(), SpinPolicy::Adaptive),
                (
                    "null/hold",
                    EntryOptions { hold_cd: true, ..Default::default() },
                    SpinPolicy::Adaptive,
                ),
                ("null/park", EntryOptions::default(), SpinPolicy::ParkOnly),
            ];
            for (mode, opts, policy) in rt_modes {
                let Some(b) = gate::baseline_latency(&base, mode, "latency_ns") else {
                    println!("gate: {mode}: no committed baseline, skipped");
                    continue;
                };
                let (h, rt) = null_mode(opts, policy, calls);
                gate_mode(
                    &mut json, &mut violations, &mut gated, mode, "latency_ns", &h, b, &tol, &rt,
                );
            }
        }
        None => println!("gate: BENCH_RTMODES.json missing, rt matrix skipped"),
    }

    // -------- bulk matrix: grant-backed copy at the extremes --------
    match gate::load_baseline(&baseline_dir, "BENCH_BULKMODES.json") {
        Some(base) => {
            let bulk_modes: [(&str, usize, u64); 2] = [
                ("64 B/copy", 64, if smoke { 4_000 } else { 20_000 }),
                ("1 MiB/copy", 1 << 20, if smoke { 40 } else { 200 }),
            ];
            for (mode, size, calls) in bulk_modes {
                let Some(b) = gate::baseline_latency(&base, mode, "latency_ns") else {
                    println!("gate: {mode}: no committed baseline, skipped");
                    continue;
                };
                let (h, rt) = bulk_copy_mode(size, calls);
                gate_mode(
                    &mut json, &mut violations, &mut gated, mode, "latency_ns", &h, b, &tol, &rt,
                );
            }
        }
        None => println!("gate: BENCH_BULKMODES.json missing, bulk matrix skipped"),
    }

    // -------- ring matrix: open-loop sojourn at rho 0.5 --------
    match gate::load_baseline(&baseline_dir, "BENCH_RINGMODES.json") {
        Some(base) => {
            let cap = base.get("open_capacity_per_s").and_then(|v| v.as_f64());
            let b = gate::baseline_latency(&base, "open/rho0.5", "sojourn_ns");
            match (cap, b) {
                (Some(cap), Some(b)) => {
                    let run_ms = if smoke { 200 } else { 600 };
                    let (soj, soj_lat, rt) = ring_sojourn(cap * 0.5, run_ms);
                    gate_mode(
                        &mut json,
                        &mut violations,
                        &mut gated,
                        "open/rho0.5",
                        "sojourn_ns",
                        &soj,
                        b,
                        &tol,
                        &rt,
                    );
                    // Gate the Latency class alone once the per-class
                    // baseline exists (the QoS-lane guarantee).
                    if let Some(bl) =
                        gate::baseline_latency(&base, "open/rho0.5", "sojourn_latency_ns")
                    {
                        gate_mode(
                            &mut json,
                            &mut violations,
                            &mut gated,
                            "open/rho0.5 (latency class)",
                            "sojourn_latency_ns",
                            &soj_lat,
                            bl,
                            &tol,
                            &rt,
                        );
                    }
                }
                _ => println!("gate: ring baseline lacks capacity/sojourn fields, skipped"),
            }
        }
        None => println!("gate: BENCH_RINGMODES.json missing, ring matrix skipped"),
    }

    json.meta("modes_gated", Json::Num(gated as f64));
    json.meta("violation_count", Json::Num(violations.len() as f64));
    // Stamp the run's ambient interference (scheduling time lost to
    // other tenants of this box) so a flaky-looking artifact carries
    // its own exculpatory evidence.
    let probe = ppc_rt::telemetry::interference_probe(std::time::Duration::from_millis(5));
    json.meta("interference_ratio", Json::Num(probe.ratio()));
    json.write_if(&json_path);
    println!();
    if violations.is_empty() {
        println!("latency gate: OK ({gated} modes gated, 0 violations)");
        ExitCode::SUCCESS
    } else {
        eprintln!("latency gate: FAILED ({} violation(s) across {gated} modes)", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        ExitCode::FAILURE
    }
}
