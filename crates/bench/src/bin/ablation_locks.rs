//! Regenerates the lock ablation: throughput scaling of the lock-free
//! per-processor PPC against three locked designs (locked-pool PPC,
//! LRPC-style, message-passing RPC) under identical null-call load.
//!
//! Run: `cargo run -p ppc-bench --bin ablation_locks [--release]`

use ppc_bench::{ablation, report};

fn main() {
    let (_rest, json_path) = report::json_flag(std::env::args().skip(1));
    let mut json = report::JsonReport::new("ablation_locks");
    println!("Lock ablation: null-call throughput (calls/second) vs. processors\n");
    let rows = ablation::run(16, 30_000.0);
    let widths = [5, 12, 12, 12, 12];
    println!(
        "{}",
        report::row(
            &["N".into(), "ppc".into(), "locked-ppc".into(), "lrpc".into(), "msg-rpc".into()],
            &widths
        )
    );
    println!("{}", report::rule(&widths));
    for r in &rows {
        json.mode(
            &format!("n{}", r.n),
            report::num_fields(&[
                ("ppc", r.ppc),
                ("locked_ppc", r.locked_ppc),
                ("lrpc", r.lrpc),
                ("msg_rpc", r.msg_rpc),
            ]),
        );
        println!(
            "{}",
            report::row(
                &[
                    r.n.to_string(),
                    format!("{:.0}", r.ppc),
                    format!("{:.0}", r.locked_ppc),
                    format!("{:.0}", r.lrpc),
                    format!("{:.0}", r.msg_rpc),
                ],
                &widths
            )
        );
    }
    let r1 = &rows[0];
    let rl = rows.last().unwrap();
    println!();
    println!("speedup at {} CPUs:", rl.n);
    println!("  ppc        {:6.2}x (lock-free, per-processor: linear)", rl.ppc / r1.ppc);
    println!("  locked-ppc {:6.2}x", rl.locked_ppc / r1.locked_ppc);
    println!("  lrpc       {:6.2}x", rl.lrpc / r1.lrpc);
    println!("  msg-rpc    {:6.2}x", rl.msg_rpc / r1.msg_rpc);
    json.meta("ppc_speedup", report::Json::Num(rl.ppc / r1.ppc));
    json.write_if(&json_path);
}
