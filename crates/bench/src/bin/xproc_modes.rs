//! Cross-process boundary cost: the same PPC dispatched in-process
//! (inline and hand-off) vs. across a real process boundary through the
//! shared segment, per dispatch mode (sync call, payload call, ring
//! batch, bulk descriptor).
//!
//! Run: `cargo run -p ppc-bench --release --bin xproc_modes`
//! CI:  `cargo run -p ppc-bench --release --bin xproc_modes -- --smoke`
//! JSON: `cargo run -p ppc-bench --release --bin xproc_modes -- --json BENCH_XPROCMODES.json`
//!
//! The server child is **forked before any thread exists** in this
//! process (`ppc_rt::xproc::fork_server`'s contract), serves the
//! segment from its own address space, and is shut down cooperatively
//! before the in-process rows run. The published cross-process
//! raw-sync baseline to beat is ≈830k roundtrips/s/core; the table
//! prints each mode's throughput against it, and against the
//! in-process inline fast path (≈70 ns) so the boundary cost per mode
//! is the visible gap.
//!
//! Smoke mode additionally asserts the **same-API invariant**: one
//! check body (results + error values) run against both transports must
//! observe identical behavior.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ppc_bench::report;
use ppc_rt::xproc::fork_server;
use ppc_rt::{EntryId, EntryOptions, RtError, Runtime, XClient, XSegOptions};

/// Published cross-process raw-sync baseline, roundtrips/s/core.
const RAW_SYNC_BASELINE_PER_S: f64 = 830_000.0;

/// Bind order shared with the forked child ⇒ shared entry ids.
const EP_NULL: EntryId = 0;
const EP_PSUM: EntryId = 1;
const EP_UPPER: EntryId = 2;

fn bind_bench_entries(rt: &Arc<Runtime>, inline: bool) {
    let opts = EntryOptions { inline_ok: inline, ..Default::default() };
    let null = rt.bind("null", opts, Arc::new(|ctx| ctx.args)).unwrap();
    let psum = rt
        .bind(
            "psum",
            opts,
            Arc::new(|ctx| {
                let n = ctx.args[0] as usize;
                let sum: u64 = ctx.scratch()[..n].iter().map(|b| u64::from(*b)).sum();
                [sum, 0, 0, 0, 0, 0, 0, 0]
            }),
        )
        .unwrap();
    let upper = rt
        .bind(
            "upper",
            opts,
            Arc::new(|ctx| {
                let desc = ctx.bulk_desc().expect("bulk descriptor");
                let n = ctx
                    .with_bulk_mut(desc, |b| {
                        b.iter_mut().for_each(|x| x.make_ascii_uppercase());
                        b.len()
                    })
                    .expect("granted");
                [n as u64, 0, 0, 0, 0, 0, 0, 0]
            }),
        )
        .unwrap();
    assert_eq!((null, psum, upper), (EP_NULL, EP_PSUM, EP_UPPER));
}

/// Mean ns per operation: minimum over `trials` trials of ~`budget_ms`,
/// after warmup (interference only adds time; the smallest trial is
/// closest to the true cost).
fn measure(budget_ms: u64, trials: usize, batch: u64, mut f: impl FnMut()) -> f64 {
    for _ in 0..10 {
        f();
    }
    let budget = Duration::from_millis(budget_ms);
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let t0 = Instant::now();
        let mut ops = 0u64;
        while t0.elapsed() < budget {
            f();
            ops += batch;
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / ops as f64);
    }
    best
}

/// The same-API invariant body: every observable here must be identical
/// for an in-process client and a cross-process one.
fn invariant_checks(
    mut call: impl FnMut(EntryId, [u64; 8]) -> Result<[u64; 8], RtError>,
) -> Result<(), String> {
    let rets = call(EP_NULL, [7, 11, 0, 0, 0, 0, 0, 0]).map_err(|e| e.to_string())?;
    if rets[0] != 7 || rets[1] != 11 {
        return Err(format!("null echo mismatch: {rets:?}"));
    }
    match call(513, [0; 8]) {
        Err(RtError::UnknownEntry(513)) => {}
        other => return Err(format!("unknown-entry surface mismatch: {other:?}")),
    }
    Ok(())
}

struct ModeResult {
    label: &'static str,
    ns: f64,
}

fn main() {
    let (args, json_path) = report::json_flag(std::env::args().skip(1));
    let smoke = args.iter().any(|a| a == "--smoke");
    let (budget_ms, trials) = if smoke { (15, 1) } else { (200, 3) };

    // Fork the server FIRST — this process has no threads yet. The
    // child builds its own runtime and serves until shutdown.
    let seg_path = ppc_rt::shm::segment_dir()
        .join(format!("ppc-xproc-bench-{}", std::process::id()));
    let _ = std::fs::remove_file(&seg_path);
    let mut forked = fork_server(&seg_path, XSegOptions::default(), || {
        let rt = Runtime::new(1);
        bind_bench_entries(&rt, true);
        rt
    })
    .expect("fork the segment server");

    let mut xc = XClient::connect_retry(&seg_path, 1, Duration::from_secs(10))
        .expect("connect to forked server");

    let mut results: Vec<ModeResult> = Vec::new();

    // Cross-process sync call: one slot rendezvous + futex pair per
    // roundtrip — the raw-sync shape the published baseline measures.
    let ns = measure(budget_ms, trials, 1, || {
        let r = xc.call(EP_NULL, [1, 2, 0, 0, 0, 0, 0, 0]).unwrap();
        std::hint::black_box(r);
    });
    results.push(ModeResult { label: "xproc_call", ns });

    // Cross-process payload call: + two 64 B copies through the slot's
    // payload page.
    let payload = [5u8; 64];
    let mut pargs = [0u64; 8];
    pargs[0] = payload.len() as u64;
    let ns = measure(budget_ms, trials, 1, || {
        let r = xc.call_with_payload(EP_PSUM, pargs, &payload).unwrap();
        std::hint::black_box(r);
    });
    results.push(ModeResult { label: "xproc_payload", ns });

    // Cross-process ring: a 16-deep batch, one doorbell, drain — the
    // boundary cost amortized over the batch.
    const BATCH: u64 = 16;
    let mut out = Vec::with_capacity(BATCH as usize);
    let ns = measure(budget_ms, trials, BATCH, || {
        for i in 0..BATCH {
            xc.submit(EP_NULL, [i; 8], i).unwrap();
        }
        xc.ring_doorbell();
        let mut got = 0;
        while got < BATCH as usize {
            got += xc.reap(BATCH as usize - got, &mut out).unwrap();
        }
        out.clear();
    });
    results.push(ModeResult { label: "xproc_ring16", ns });

    // Cross-process bulk: a 4 KiB span in the client's share, mutated
    // in place by the handler — descriptor word rides the call, zero
    // payload copies at dispatch.
    xc.bulk_grant(EP_UPPER, true).expect("grant bulk share");
    xc.bulk_write(0, &[b'a'; 4096]).unwrap();
    let desc = xc.bulk_desc(0, 4096, true).unwrap();
    let ns = measure(budget_ms, trials, 1, || {
        let r = xc.call_bulk(EP_UPPER, [0; 8], desc).unwrap();
        std::hint::black_box(r);
    });
    results.push(ModeResult { label: "xproc_bulk4k", ns });

    // Same-API invariant, cross-process half.
    let x_invariant = invariant_checks(|ep, a| xc.call(ep, a));

    // Cooperative teardown before any local threads matter.
    xc.shutdown_server();
    forked.wait();
    drop(xc);

    // In-process rows: same handlers, same machine, no boundary.
    let rt = Runtime::new(1);
    bind_bench_entries(&rt, true);
    let client = rt.client(0, 1);
    let ns = measure(budget_ms, trials, 1, || {
        let r = client.call(EP_NULL, [1, 2, 0, 0, 0, 0, 0, 0]).unwrap();
        std::hint::black_box(r);
    });
    results.push(ModeResult { label: "inproc_inline", ns });

    let rt2 = Runtime::new(1);
    bind_bench_entries(&rt2, false);
    let client2 = rt2.client(0, 1);
    let ns = measure(budget_ms, trials, 1, || {
        let r = client2.call(EP_NULL, [1, 2, 0, 0, 0, 0, 0, 0]).unwrap();
        std::hint::black_box(r);
    });
    results.push(ModeResult { label: "inproc_handoff", ns });

    // Same-API invariant, in-process half.
    let i_invariant = invariant_checks(|ep, a| client.call(ep, a));

    // Report.
    let inline_ns = results
        .iter()
        .find(|r| r.label == "inproc_inline")
        .map(|r| r.ns)
        .unwrap_or(f64::NAN);
    let mut json = report::JsonReport::new("xproc_modes");
    json.meta("smoke", report::Json::Bool(smoke));
    json.meta("raw_sync_baseline_per_s", report::Json::Num(RAW_SYNC_BASELINE_PER_S));
    println!(
        "xproc_modes: boundary cost per dispatch mode ({} cores allowed)",
        report::cpus_allowed()
    );
    let widths = [15, 12, 14, 12, 12];
    println!(
        "{}",
        report::row(
            &[
                "mode".into(),
                "ns/rt".into(),
                "roundtrips/s".into(),
                "vs inline".into(),
                "vs 830k/s".into(),
            ],
            &widths
        )
    );
    println!("{}", report::rule(&widths));
    for r in &results {
        let per_s = 1e9 / r.ns;
        println!(
            "{}",
            report::row(
                &[
                    r.label.into(),
                    format!("{:.0}", r.ns),
                    format!("{:.0}", per_s),
                    format!("{:.1}x", r.ns / inline_ns),
                    format!("{:.2}x", per_s / RAW_SYNC_BASELINE_PER_S),
                ],
                &widths
            )
        );
        json.mode(
            r.label,
            report::num_fields(&[
                ("ns_per_roundtrip", r.ns),
                ("roundtrips_per_s", per_s),
                ("vs_inline", r.ns / inline_ns),
                ("vs_raw_sync_baseline", per_s / RAW_SYNC_BASELINE_PER_S),
            ]),
        );
    }
    println!();

    let invariant_ok = match (&i_invariant, &x_invariant) {
        (Ok(()), Ok(())) => true,
        (i, x) => {
            println!("same-API invariant FAILED: inproc={i:?} xproc={x:?}");
            false
        }
    };
    json.meta("same_api_invariant", report::Json::Bool(invariant_ok));
    assert!(invariant_ok, "same-API invariant must hold in both modes");

    if smoke {
        // Smoke asserts mechanism: the forked child served every
        // dispatch mode and the API surface matched; tiny budgets make
        // the throughput columns noise.
        println!("smoke: OK (forked server exercised call/payload/ring/bulk)");
    } else {
        let xcall = results.iter().find(|r| r.label == "xproc_call").unwrap();
        let per_s = 1e9 / xcall.ns;
        println!(
            "raw-sync: {:.0} roundtrips/s/core vs published baseline {:.0} ({:.2}x)",
            per_s,
            RAW_SYNC_BASELINE_PER_S,
            per_s / RAW_SYNC_BASELINE_PER_S
        );
    }
    json.write_if(&json_path);
}
