//! Control-plane churn throughput: entry lifecycle operations — bind,
//! exchange, soft-kill, hard-kill, reclaim — measured **under concurrent
//! call load**, across the dispatch modes.
//!
//! Run: `cargo run -p ppc-bench --release --bin churn`
//! JSON: `cargo run -p ppc-bench --release --bin churn -- --json BENCH_CHURN.json`
//! CI:  `cargo run -p ppc-bench --release --bin churn -- --smoke`
//!
//! The per-vCPU control-plane rework moved every one of these onto the
//! Frank cold path: bind publishes to every vCPU's table replica,
//! exchange retires the old handler into an era-tagged limbo, reclaim
//! unpublishes and waits out a pin-era grace period before freeing the
//! entry. The numbers here are the price of that safety — and the
//! `stability` column is the anti-leak gate: ns/cycle over the second
//! half of ≥10k bind→call→kill→reclaim cycles divided by the first
//! half. A runtime that leaked entries, handlers, or workers per cycle
//! (the pre-epoch runtime leaked all three) degrades monotonically and
//! fails the ~1.0 ratio; a memory-flat one holds it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use ppc_bench::report;
use ppc_rt::{EntryOptions, Handler, Runtime, SpinPolicy};

/// Echo handler with a touch of work so calls are genuinely in flight.
fn load_handler() -> Handler {
    Arc::new(|ctx| {
        std::hint::black_box(ctx.args[0]);
        ctx.args
    })
}

struct LoadedRt {
    rt: Arc<Runtime>,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<u64>>,
    load_ep: usize,
}

/// A 2-vCPU runtime in the given dispatch mode with one background
/// client per vCPU hammering a `load` entry for the whole measurement —
/// every lifecycle op below runs against live fast-path traffic (claims
/// pinning eras, pools cycling, grace periods having something to wait
/// for).
fn loaded_runtime(inline: bool, policy: SpinPolicy) -> LoadedRt {
    let rt = Runtime::new(2);
    rt.set_spin_policy(policy);
    let load_ep = rt
        .bind("load", EntryOptions { inline_ok: inline, ..Default::default() }, load_handler())
        .unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let threads = (0..2)
        .map(|v| {
            let c = rt.client(v, 1 + v as u32);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(Ordering::Acquire) {
                    c.call(load_ep, [n; 8]).unwrap();
                    n += 1;
                }
                n
            })
        })
        .collect();
    LoadedRt { rt, stop, threads, load_ep }
}

impl LoadedRt {
    fn finish(self) -> u64 {
        self.stop.store(true, Ordering::Release);
        self.threads.into_iter().map(|t| t.join().unwrap()).sum()
    }
}

/// Mean ns/cycle of `cycle` over `n` runs, split into halves for the
/// stability ratio (second-half mean / first-half mean).
fn timed_halves(n: u64, mut cycle: impl FnMut()) -> (f64, f64, f64) {
    let half = n / 2;
    let mut halves = [0f64; 2];
    for slot in &mut halves {
        let t0 = Instant::now();
        for _ in 0..half {
            cycle();
        }
        *slot = t0.elapsed().as_nanos() as f64 / half as f64;
    }
    let mean = (halves[0] + halves[1]) / 2.0;
    (mean, halves[0], halves[1])
}

/// bind → `calls` calls → kill → reclaim at a fixed entry ID, `cycles`
/// times. `soft` drains via soft-kill + wait_drained, otherwise
/// hard-kill aborts stragglers.
fn cycle_mode(
    inline: bool,
    policy: SpinPolicy,
    cycles: u64,
    calls: u64,
    soft: bool,
) -> (f64, f64, Vec<(String, report::Json)>) {
    const EP: usize = 200;
    let l = loaded_runtime(inline, policy);
    let rt = Arc::clone(&l.rt);
    let opts = EntryOptions { want_ep: Some(EP), inline_ok: inline, ..Default::default() };
    let c = rt.client(0, 9);
    let before = rt.stats.snapshot();
    let (mean, first, second) = timed_halves(cycles, || {
        let ep = rt.bind("churned", opts, load_handler()).unwrap();
        assert_eq!(ep, EP, "the reclaimed ID is reused every cycle");
        for i in 0..calls {
            c.call(ep, [i; 8]).unwrap();
        }
        if soft {
            rt.soft_kill(ep, 0).unwrap();
            rt.wait_drained(ep).unwrap();
        } else {
            rt.hard_kill(ep, 0).unwrap();
        }
        rt.reclaim_slot(ep, 0).unwrap();
    });
    let delta = rt.stats.snapshot().since(&before);
    let bg_calls = l.finish();
    let stability = second / first;
    let fields = vec![
        ("ns_per_cycle".to_string(), report::Json::Num(mean)),
        ("first_half_ns".to_string(), report::Json::Num(first)),
        ("second_half_ns".to_string(), report::Json::Num(second)),
        ("stability".to_string(), report::Json::Num(stability)),
        ("cycles".to_string(), report::Json::Num(2.0 * (cycles / 2) as f64)),
        ("entries_reclaimed".to_string(), report::Json::Num(delta.entries_reclaimed as f64)),
        ("background_calls".to_string(), report::Json::Num(bg_calls as f64)),
    ];
    (mean, stability, fields)
}

/// ns/exchange on an entry under live two-vCPU call traffic: each swap
/// retires the previous handler into limbo and frees the era that
/// quiesced — steady-state cost of on-line replacement.
fn exchange_mode(
    inline: bool,
    policy: SpinPolicy,
    n: u64,
) -> (f64, f64, Vec<(String, report::Json)>) {
    let l = loaded_runtime(inline, policy);
    let rt = Arc::clone(&l.rt);
    let ep = l.load_ep;
    let before = rt.stats.snapshot();
    let (mean, first, second) = timed_halves(n, || {
        rt.exchange(ep, load_handler(), 0).unwrap();
    });
    let delta = rt.stats.snapshot().since(&before);
    let bg_calls = l.finish();
    // Anti-leak accounting: everything retired was freed, up to the
    // bounded limbo tail still waiting on the final era.
    let outstanding = delta.handlers_retired - delta.handlers_freed;
    assert!(outstanding <= 2, "limbo unbounded: {outstanding} handlers outstanding");
    let stability = second / first;
    let fields = vec![
        ("ns_per_exchange".to_string(), report::Json::Num(mean)),
        ("first_half_ns".to_string(), report::Json::Num(first)),
        ("second_half_ns".to_string(), report::Json::Num(second)),
        ("stability".to_string(), report::Json::Num(stability)),
        ("handlers_retired".to_string(), report::Json::Num(delta.handlers_retired as f64)),
        ("handlers_freed".to_string(), report::Json::Num(delta.handlers_freed as f64)),
        ("background_calls".to_string(), report::Json::Num(bg_calls as f64)),
    ];
    (mean, stability, fields)
}

fn main() {
    let (args, json_path) = report::json_flag(std::env::args().skip(1));
    let mut json = report::JsonReport::new("churn");
    let smoke = args.iter().any(|a| a == "--smoke");
    json.meta("smoke", report::Json::Bool(smoke));
    // Acceptance floor: the full run drives ≥10k hard cycles per mode.
    let (cycles, soft_cycles, exchanges, calls) =
        if smoke { (200, 50, 500, 2) } else { (10_000, 1_000, 10_000, 4) };
    json.meta("hard_cycles", report::Json::Num(cycles as f64));
    json.meta("calls_per_cycle", report::Json::Num(calls as f64));

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("Control-plane churn under load ({cores} host core(s)); ns/op");
    println!();
    let widths = [14, 12, 12, 12, 10];
    println!(
        "{}",
        report::row(
            &["op".into(), "inline".into(), "spin".into(), "park".into(), "stability".into()],
            &widths
        )
    );
    println!("{}", report::rule(&widths));

    let modes: [(&str, bool, SpinPolicy); 3] = [
        ("inline", true, SpinPolicy::Adaptive),
        ("spin", false, SpinPolicy::Adaptive),
        ("park", false, SpinPolicy::ParkOnly),
    ];

    for (op, n) in [("hard_cycle", cycles), ("soft_cycle", soft_cycles), ("exchange", exchanges)]
    {
        let mut ns = Vec::new();
        let mut worst_stability = 0f64;
        for (mode, inline, policy) in modes {
            let (mean, stability, fields) = match op {
                "exchange" => exchange_mode(inline, policy, n),
                _ => cycle_mode(inline, policy, n, calls, op == "soft_cycle"),
            };
            json.mode(&format!("{op}/{mode}"), fields);
            ns.push(mean);
            worst_stability = worst_stability.max(stability);
        }
        println!(
            "{}",
            report::row(
                &[
                    op.into(),
                    format!("{:.0}", ns[0]),
                    format!("{:.0}", ns[1]),
                    format!("{:.0}", ns[2]),
                    format!("{worst_stability:.2}"),
                ],
                &widths
            )
        );
    }

    println!();
    println!(
        "stability = worst (second half ns / first half ns) across modes; \
         ~1.0 means the control plane is memory-flat over the run"
    );

    if smoke {
        // Functional gate for CI: after churning, the last generation is
        // really gone and the ID rebinds cleanly.
        let rt = Runtime::new(1);
        let ep = rt.bind("gate", EntryOptions::default(), load_handler()).unwrap();
        let weak = rt.entry_weak(ep).unwrap();
        rt.client(0, 1).call(ep, [1; 8]).unwrap();
        rt.hard_kill(ep, 0).unwrap();
        rt.reclaim_slot(ep, 0).unwrap();
        assert!(weak.upgrade().is_none(), "reclaim frees the entry");
        let ep2 = rt.bind("gate2", EntryOptions::default(), load_handler()).unwrap();
        assert_eq!(rt.client(0, 1).call(ep2, [2; 8]).unwrap(), [2; 8]);
        println!();
        println!("smoke: OK");
    }
    json.write_if(&json_path);
}
