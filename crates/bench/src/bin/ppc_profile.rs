//! `ppc-profile`: render a runtime's critical-path profile — the
//! per-entry phase breakdown and a collapsed-stack flamegraph file —
//! from the tracing plane's span records.
//!
//! ```text
//! ppc-profile                        # demo workload, text report to stdout
//! ppc-profile --out prof.folded     # also write collapsed stacks
//! ppc-profile --smoke               # CI: assert the profile is non-empty
//! ```
//!
//! The demo workload is a deliberately nested call chain — a client
//! calls an inline entry whose handler calls a second, hand-off entry
//! — so the report exercises every attribution rule: client self time,
//! rendezvous wait, handler self time, cross-entry child billing, and
//! the Frank pool-grow excursion on first dispatch. Point a flamegraph
//! renderer at the `--out` file:
//!
//! ```text
//! flamegraph.pl prof.folded > prof.svg     # or load in speedscope
//! ```
//!
//! Against a *live* runtime, the same two renderings are served over
//! HTTP at `/profile` and `/profile.folded` (`Runtime::serve_metrics`);
//! this bin is the offline/CI path.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use ppc_rt::{EntryOptions, Runtime};

const USAGE: &str = "\
ppc-profile: critical-path profile report + collapsed-stack flamegraph

  --out <path>   write collapsed stacks (flamegraph.pl / speedscope format)
  --calls <n>    demo workload size (default 400)
  --smoke        CI mode: run the demo, assert the profile is complete
";

fn flag_value(args: &[String], name: &str) -> Option<String> {
    if let Some(i) = args.iter().position(|a| a == name) {
        return args.get(i + 1).cloned();
    }
    let eq = format!("{name}=");
    args.iter().find_map(|a| a.strip_prefix(&eq)).map(str::to_string)
}

/// The nested demo workload: `outer` (inline) calls `inner` (hand-off,
/// zero pre-spawned workers so the first dispatch takes the Frank
/// path), every root traced.
fn demo_profile(calls: u64) -> (ppc_rt::profile::Profile, Arc<Runtime>) {
    // A deep span ring so the whole demo run is retained — the default
    // ring would wrap and truncate early traces into orphans.
    let rt = Runtime::with_runtime_options(
        1,
        ppc_rt::RuntimeOptions { trace_capacity: 8192, ..Default::default() },
    );
    rt.obs().set_sample_shift(0); // trace every root deterministically
    let inner = rt
        .bind(
            "profile-inner",
            EntryOptions { initial_workers: 0, ..Default::default() },
            Arc::new(|ctx| {
                // ~2 µs of real service time so the handler phase has
                // visible weight in the flame.
                let t0 = Instant::now();
                while t0.elapsed().as_nanos() < 2_000 {
                    std::hint::spin_loop();
                }
                [ctx.args[0] * 2; 8]
            }),
        )
        .unwrap();
    let rt2 = Arc::clone(&rt);
    let outer = rt
        .bind(
            "profile-outer",
            EntryOptions { inline_ok: true, ..Default::default() },
            Arc::new(move |ctx| {
                let c = rt2.client(ctx.vcpu, 999);
                let r = c.call(inner, [ctx.args[0] + 1; 8]).unwrap();
                [r[0] + 5; 8]
            }),
        )
        .unwrap();
    let client = rt.client(0, 1);
    for i in 0..calls {
        client.call(outer, [i; 8]).unwrap();
    }
    (rt.profile(), rt)
}

fn run(args: &[String], smoke: bool) -> Result<(), String> {
    let calls: u64 =
        flag_value(args, "--calls").and_then(|s| s.parse().ok()).unwrap_or(400);
    let out_path = flag_value(args, "--out");

    let (profile, _rt) = demo_profile(calls);
    print!("{}", profile.text_report());

    let folded = profile.folded();
    if let Some(path) = &out_path {
        std::fs::write(path, &folded).map_err(|e| format!("writing {path}: {e}"))?;
        println!("\ncollapsed stacks written: {path} ({} path(s))", profile.stacks.len());
    }

    if smoke {
        if !cfg!(feature = "obs") {
            println!("ppc-profile smoke: SKIP (obs feature compiled out)");
            return Ok(());
        }
        if profile.records == 0 || profile.traces == 0 {
            return Err("profile is empty under a traced workload".into());
        }
        let outer = profile
            .entries
            .iter()
            .find(|e| e.name == "profile-outer")
            .ok_or("no profile for the root entry")?;
        if outer.roots == 0 {
            return Err("root entry shows zero traced roots".into());
        }
        for phase in [ppc_rt::SpanPhase::Call, ppc_rt::SpanPhase::Handler] {
            if outer.phases[phase as usize].count == 0 {
                return Err(format!("root entry lacks {} spans", phase.label()));
            }
        }
        if outer.child_ns == 0 {
            return Err("nested call into profile-inner was not child-attributed".into());
        }
        // The folded output must be flamegraph-loadable: every line is
        // `frame;frame... <int>`, and the cross-entry path is present.
        if folded.is_empty() {
            return Err("collapsed-stack output is empty".into());
        }
        for line in folded.lines() {
            let (path, val) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("malformed folded line: {line:?}"))?;
            if path.is_empty() || val.parse::<u64>().is_err() {
                return Err(format!("malformed folded line: {line:?}"));
            }
        }
        if !folded.lines().any(|l| l.contains("profile-outer:") && l.contains("profile-inner:"))
        {
            return Err("no cross-entry stack path in the folded output".into());
        }
        println!(
            "ppc-profile smoke: OK ({} span(s), {} stack path(s), cross-entry path present)",
            profile.records,
            profile.stacks.len(),
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    match run(&args, smoke) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ppc-profile: FAIL — {e}");
            ExitCode::FAILURE
        }
    }
}
