//! Regenerates **Figure 2**: the breakdown of the round-trip PPC time
//! under eight conditions, with the paper's totals alongside.
//!
//! Run: `cargo run -p ppc-bench --bin figure2`

use hector_sim::cpu::CostCategory;
use ppc_bench::report;
use ppc_core::microbench::{measure, Condition};

fn main() {
    let (_rest, json_path) = report::json_flag(std::env::args().skip(1));
    let mut json = report::JsonReport::new("figure2");
    println!("Figure 2: round-trip PPC time breakdown (microseconds)");
    println!("Categories follow the paper's legend; totals compared to CSRI-294.\n");

    let cats: Vec<CostCategory> = CostCategory::ALL
        .iter()
        .copied()
        .filter(|c| *c != CostCategory::Other)
        .collect();

    let widths: Vec<usize> = std::iter::once(34_usize).chain(cats.iter().map(|_| 8)).chain([8, 8]).collect();
    let mut header = vec!["condition".to_string()];
    header.extend(cats.iter().map(|c| short(*c).to_string()));
    header.push("TOTAL".into());
    header.push("paper".into());
    println!("{}", report::row(&header, &widths));
    println!("{}", report::rule(&widths));

    let mut results = Vec::new();
    for cond in Condition::ALL {
        let bd = measure(cond);
        let mut cells = vec![cond.label()];
        let mut fields: Vec<(&str, f64)> = Vec::new();
        for c in &cats {
            cells.push(format!("{:.1}", bd.get(*c).as_us()));
            fields.push((short(*c), bd.get(*c).as_us()));
        }
        cells.push(format!("{:.1}", bd.total().as_us()));
        cells.push(format!("{:.1}", cond.paper_total_us()));
        fields.push(("total_us", bd.total().as_us()));
        fields.push(("paper_us", cond.paper_total_us()));
        json.mode(&cond.label(), report::num_fields(&fields));
        println!("{}", report::row(&cells, &widths));
        results.push((cond, bd));
    }

    println!();
    let t = |k: bool, h: bool, f: bool| {
        results
            .iter()
            .find(|(c, _)| c.kernel_server == k && c.hold_cd == h && c.flushed == f)
            .map(|(_, bd)| bd.total().as_us())
            .unwrap()
    };
    println!("derived claims:");
    println!(
        "  hold-CD saving (user, primed):   {:5.2} us   (paper: 2-3 us)",
        t(false, false, false) - t(false, true, false)
    );
    println!(
        "  kernel-server saving (primed):   {:5.2} us   (paper: ~10.2 us)",
        t(false, false, false) - t(true, false, false)
    );
    println!(
        "  cache-flush penalty (user):      {:5.2} us   (paper: ~20 us)",
        t(false, false, true) - t(false, false, false)
    );
    let worst = ppc_core::microbench::measure_dirty_and_icache_flushed();
    println!(
        "  dirty cache + I-flush, extra:    {:5.2} us   (paper: another 20-30 us)",
        worst.total().as_us() - t(false, false, true)
    );
    json.write_if(&json_path);
}

fn short(c: CostCategory) -> &'static str {
    match c {
        CostCategory::TlbSetup => "tlbset",
        CostCategory::ServerTime => "server",
        CostCategory::KernelSaveRestore => "ksave",
        CostCategory::UserSaveRestore => "usave",
        CostCategory::CdManip => "cd",
        CostCategory::PpcKernel => "ppck",
        CostCategory::TlbMiss => "tlbmiss",
        CostCategory::TrapOverhead => "trap",
        CostCategory::Unaccounted => "unacct",
        CostCategory::Other => "other",
    }
}
