//! Submission/completion-ring matrix: pipelined ring PPC vs. repeated
//! `call_async` across queue depths and spin policies, plus an
//! open-loop arrival generator with credit-based backpressure.
//!
//! Run: `cargo run -p ppc-bench --release --bin ring_modes`
//! CI:  `cargo run -p ppc-bench --release --bin ring_modes -- --smoke`
//! JSON: `cargo run -p ppc-bench --release --bin ring_modes -- --json BENCH_RINGMODES.json`
//!
//! **Closed loop** (the ISSUE-6 acceptance gate): at each queue depth
//! the client either issues `depth` `call_async` calls and waits them
//! all (the per-call hand-off: one slot rendezvous — and in the park
//! policy one park/unpark pair — *per call*), or submits `depth` SQEs,
//! rings the doorbell once, and drains. The ring amortizes the wake
//! over the batch and replaces the per-call slot protocol with two
//! cursor stores, so the ratio column grows with depth; the gate is
//! ring ≥ 4× async at depth ≥ 8 on both the spin and park policies.
//!
//! **Open loop**: a Poisson-ish generator (LCG-driven exponential
//! interarrivals) offers load at a fraction of the ring's measured
//! capacity. Unlike the closed loops above, the arrival rate does not
//! slow down when the server backs up — the overload row (ρ = 1.5)
//! shows what the credit gate is for: `RingFull` sheds the excess at
//! submission, observed in-flight never exceeds the credit budget
//! (bounded memory), and the sojourn tail stays finite instead of
//! growing with the backlog. Reported per row: achieved rate, shed
//! count, sojourn p50/p99/p999, and the queue-depth distribution.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ppc_bench::report;
use ppc_rt::{EntryOptions, Handler, RingOptions, RtError, Runtime, SpinPolicy};

/// Busy-wait handler of roughly `ns` nanoseconds of service time.
fn busy_handler(ns: u64) -> Handler {
    Arc::new(move |ctx| {
        if ns > 0 {
            let t0 = Instant::now();
            while (t0.elapsed().as_nanos() as u64) < ns {
                std::hint::spin_loop();
            }
        }
        ctx.args
    })
}

/// Mean ns per operation of `f` (which performs `batch` operations per
/// invocation): minimum over `trials` trials of ~`budget_ms` each,
/// after warmup. Interference only ever adds time; the smallest trial
/// is closest to the true cost.
fn measure(budget_ms: u64, trials: usize, batch: u64, mut f: impl FnMut()) -> f64 {
    for _ in 0..20 {
        f();
    }
    let budget = Duration::from_millis(budget_ms);
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let t0 = Instant::now();
        let mut ops = 0u64;
        while t0.elapsed() < budget {
            f();
            ops += batch;
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / ops as f64);
    }
    best
}

/// ns/call of the per-call baseline: `depth` concurrent `call_async`
/// hand-offs, then wait them all — the pre-ring way to keep `depth`
/// PPCs in flight from one client.
fn async_mode(rt: &Arc<Runtime>, depth: usize, budget_ms: u64, trials: usize) -> f64 {
    let ep = rt.bind("svc-async", EntryOptions::default(), busy_handler(0)).unwrap();
    let client = rt.client(0, 1);
    let mut pending = Vec::with_capacity(depth);
    let ns = measure(budget_ms, trials, depth as u64, || {
        for i in 0..depth {
            pending.push(client.call_async(ep, [i as u64; 8]).unwrap());
        }
        for p in pending.drain(..) {
            std::hint::black_box(p.wait());
        }
    });
    rt.hard_kill(ep, 0).unwrap();
    rt.reclaim_slot(ep, 0).unwrap();
    ns
}

/// ns/call of the ring: submit `depth` SQEs, one doorbell, drain.
fn ring_mode(rt: &Arc<Runtime>, depth: usize, budget_ms: u64, trials: usize) -> f64 {
    let ep = rt.bind("svc-ring", EntryOptions::default(), busy_handler(0)).unwrap();
    let client = rt.client(0, 1);
    let mut ring = client.ring_with(RingOptions {
        sq_depth: depth.max(8),
        cq_depth: depth.max(8),
        credits: depth.max(8),
    });
    let mut out = Vec::with_capacity(depth);
    let ns = measure(budget_ms, trials, depth as u64, || {
        for i in 0..depth {
            ring.submit(ep, [i as u64; 8], i as u64).unwrap();
        }
        ring.drain(&mut out);
        std::hint::black_box(out.drain(..).count());
    });
    drop(ring);
    rt.hard_kill(ep, 0).unwrap();
    rt.reclaim_slot(ep, 0).unwrap();
    ns
}

/// One open-loop row: offer exponential arrivals at `rate_per_s` for
/// `run_ms`, shedding on `RingFull`. Every 8th arrival targets a
/// `QosClass::Bulk` entry with 4× the service time — the QoS-lane
/// mix — and sojourn is reported per class, so the artifact shows the
/// Latency lane's tail staying flat while Bulk absorbs the queueing.
/// Returns the JSON fields and the (max observed in-flight, credit
/// budget) pair for the bounded-memory check.
fn open_loop(
    rt: &Arc<Runtime>,
    service_ns: u64,
    rate_per_s: f64,
    run_ms: u64,
    credits: usize,
) -> (Vec<(String, report::Json)>, u64, u64) {
    let ep = rt.bind("svc-open", EntryOptions::default(), busy_handler(service_ns)).unwrap();
    let bulk_ep = rt
        .bind(
            "svc-open-bulk",
            EntryOptions { qos: ppc_rt::QosClass::Bulk, ..Default::default() },
            busy_handler(service_ns * 4),
        )
        .unwrap();
    let client = rt.client(0, 1);
    let mut ring = client.ring_with(RingOptions {
        sq_depth: credits,
        cq_depth: credits,
        credits,
    });
    let mean_ns = 1e9 / rate_per_s;
    // Deterministic LCG → inverse-CDF exponential interarrivals: an
    // open-loop generator whose rate is independent of service state.
    let mut lcg: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut next_exp = move || -> u64 {
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let u = ((lcg >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
        (-mean_ns * (1.0 - u).ln()).round() as u64
    };

    let mut sojourn = report::Histogram::new();
    let mut sojourn_lat = report::Histogram::new();
    let mut sojourn_bulk = report::Histogram::new();
    let mut depth_hist = report::Histogram::new();
    let mut out: Vec<ppc_rt::Completion> = Vec::with_capacity(credits);
    let (mut offered, mut shed, mut done, mut max_if) = (0u64, 0u64, 0u64, 0u64);
    let before = rt.stats.snapshot();
    let run_ns = run_ms * 1_000_000;
    let t0 = Instant::now();
    let mut next_arrival = next_exp();
    loop {
        let now = t0.elapsed().as_nanos() as u64;
        if now >= run_ns {
            break;
        }
        let mut submitted = false;
        while next_arrival <= now {
            offered += 1;
            next_arrival += next_exp();
            // Every 8th arrival rides the Bulk lane.
            let target = if offered.is_multiple_of(8) { bulk_ep } else { ep };
            match ring.submit(target, [0; 8], now) {
                Ok(()) => {
                    submitted = true;
                    depth_hist.record(ring.in_flight());
                }
                // Open loop: the arrival is shed, not retried — the
                // generator does not slow down for the server.
                Err(RtError::RingFull) => shed += 1,
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
        if submitted {
            ring.doorbell();
        }
        max_if = max_if.max(ring.in_flight());
        let reaped = ring.reap(credits, &mut out);
        if reaped > 0 {
            let now = t0.elapsed().as_nanos() as u64;
            for c in out.drain(..) {
                c.result.expect("open-loop entry stays live");
                let s = now.saturating_sub(c.user);
                sojourn.record(s);
                if c.ep == bulk_ep { &mut sojourn_bulk } else { &mut sojourn_lat }.record(s);
                done += 1;
            }
        } else if !submitted {
            // Idle tick (waiting for the next arrival with nothing to
            // reap): yield instead of hot-polling the clock, so the
            // ring worker gets the core on single-CPU hosts.
            std::thread::yield_now();
        }
    }
    ring.drain(&mut out);
    let tail = t0.elapsed().as_nanos() as u64;
    for c in out.drain(..) {
        let s = tail.saturating_sub(c.user);
        sojourn.record(s);
        if c.ep == bulk_ep { &mut sojourn_bulk } else { &mut sojourn_lat }.record(s);
        done += 1;
    }
    let elapsed_s = t0.elapsed().as_secs_f64();
    drop(ring);
    let delta = rt.stats.snapshot().since(&before);
    for e in [ep, bulk_ep] {
        rt.hard_kill(e, 0).unwrap();
        rt.reclaim_slot(e, 0).unwrap();
    }

    let fields = vec![
        ("offered_per_s".to_string(), report::Json::Num(offered as f64 / elapsed_s)),
        ("achieved_per_s".to_string(), report::Json::Num(done as f64 / elapsed_s)),
        ("shed".to_string(), report::Json::Num(shed as f64)),
        // The shed split: a full credit budget (`shed_no_credit` — the
        // client should reap) is a different condition from a full SQ
        // (`shed_sq_full` — the worker is behind); the old artifact
        // conflated both into one count.
        ("shed_no_credit".to_string(), report::Json::Num(delta.ring_no_credit as f64)),
        ("shed_sq_full".to_string(), report::Json::Num(delta.ring_full as f64)),
        ("max_in_flight".to_string(), report::Json::Num(max_if as f64)),
        ("credits".to_string(), report::Json::Num(credits as f64)),
        ("sojourn_ns".to_string(), report::latency_fields(&sojourn)),
        ("sojourn_latency_ns".to_string(), report::latency_fields(&sojourn_lat)),
        ("sojourn_bulk_ns".to_string(), report::latency_fields(&sojourn_bulk)),
        ("queue_depth".to_string(), report::latency_fields(&depth_hist)),
    ];
    (fields, max_if, credits as u64)
}

fn main() {
    let (args, json_path) = report::json_flag(std::env::args().skip(1));
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut json = report::JsonReport::new("ring_modes");
    json.meta("smoke", report::Json::Bool(smoke));
    let (budget_ms, trials, open_ms) = if smoke { (15, 1, 150) } else { (100, 3, 1_000) };

    println!(
        "Ring vs per-call async, ns/call ({} host core(s), {} schedulable)",
        report::host_cores(),
        report::cpus_allowed()
    );
    println!();
    let widths = [16, 10, 10, 8];
    println!(
        "{}",
        report::row(&["policy/depth".into(), "async".into(), "ring".into(), "ratio".into()], &widths)
    );
    println!("{}", report::rule(&widths));

    // -------- closed loop: the ≥4× acceptance matrix --------
    let mut gate_ok = true;
    for (policy, pname) in [(SpinPolicy::Adaptive, "spin"), (SpinPolicy::ParkOnly, "park")] {
        for depth in [1usize, 8, 32] {
            let rt = Runtime::new(1);
            rt.set_spin_policy(policy);
            let async_ns = async_mode(&rt, depth, budget_ms, trials);
            let ring_ns = ring_mode(&rt, depth, budget_ms, trials);
            let ratio = async_ns / ring_ns;
            if depth >= 8 && ratio < 4.0 {
                gate_ok = false;
            }
            println!(
                "{}",
                report::row(
                    &[
                        format!("{pname}/d{depth}"),
                        format!("{async_ns:.0}"),
                        format!("{ring_ns:.0}"),
                        format!("{ratio:.1}x"),
                    ],
                    &widths
                )
            );
            json.mode(
                &format!("closed/{pname}/d{depth}"),
                report::num_fields(&[
                    ("async_ns_per_call", async_ns),
                    ("ring_ns_per_call", ring_ns),
                    ("ratio", ratio),
                ]),
            );
        }
    }
    println!();

    // -------- open loop: backpressure under offered load --------
    // Capacity estimate for the 1 µs-service entry: service time plus
    // the ring's per-call overhead, from a short closed-loop run.
    let service_ns = 1_000u64;
    let cap_rt = Runtime::new(1);
    let per_call = {
        let ep = cap_rt.bind("svc-cap", EntryOptions::default(), busy_handler(service_ns)).unwrap();
        let client = cap_rt.client(0, 1);
        let mut ring = client.ring_with(RingOptions { sq_depth: 32, cq_depth: 32, credits: 32 });
        let mut out = Vec::new();
        measure(budget_ms, 1, 32, || {
            for i in 0..32u64 {
                ring.submit(ep, [0; 8], i).unwrap();
            }
            ring.drain(&mut out);
            out.clear();
        })
    };
    let capacity = 1e9 / per_call;
    json.meta("open_service_ns", report::Json::Num(service_ns as f64));
    json.meta("open_capacity_per_s", report::Json::Num(capacity));
    println!("open loop: 1 µs service, measured capacity {capacity:.0}/s, credits 64");
    println!();
    let ow = [8, 12, 12, 10, 10, 10, 10, 10, 10, 12];
    println!(
        "{}",
        report::row(
            &[
                "rho".into(),
                "offered/s".into(),
                "achieved/s".into(),
                "shed".into(),
                "p50 us".into(),
                "p99 us".into(),
                "p999 us".into(),
                "latP99".into(),
                "blkP99".into(),
                "max_inflight".into(),
            ],
            &ow
        )
    );
    println!("{}", report::rule(&ow));
    for rho in [0.5f64, 0.8, 1.5] {
        let rt = Runtime::new(1);
        let (fields, max_if, credits) = open_loop(&rt, service_ns, capacity * rho, open_ms, 64);
        // The bounded-memory invariant is unconditional: overload turns
        // into sheds, never into queue growth past the credit budget.
        assert!(
            max_if <= credits,
            "in-flight {max_if} exceeded the credit budget {credits}"
        );
        let get = |k: &str| {
            fields
                .iter()
                .find(|(n, _)| n == k)
                .and_then(|(_, v)| v.as_f64())
                .unwrap_or(0.0)
        };
        let sub = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone()).unwrap();
        let soj = sub("sojourn_ns");
        let q = |p: &str| soj.get(p).and_then(|v| v.as_f64()).unwrap_or(0.0) / 1_000.0;
        let class_q = |k: &str, p: &str| {
            sub(k).get(p).and_then(|v| v.as_f64()).unwrap_or(0.0) / 1_000.0
        };
        println!(
            "{}",
            report::row(
                &[
                    format!("{rho:.1}"),
                    format!("{:.0}", get("offered_per_s")),
                    format!("{:.0}", get("achieved_per_s")),
                    format!("{:.0}", get("shed")),
                    format!("{:.1}", q("p50")),
                    format!("{:.1}", q("p99")),
                    format!("{:.1}", q("p999")),
                    format!("{:.1}", class_q("sojourn_latency_ns", "p99")),
                    format!("{:.1}", class_q("sojourn_bulk_ns", "p99")),
                    format!("{max_if}"),
                ],
                &ow
            )
        );
        json.mode(&format!("open/rho{rho:.1}"), fields);
    }

    println!();
    if smoke {
        // Smoke asserts mechanism, not magnitude: the ring moved work
        // in every mode and backpressure held (asserted above); tiny
        // budgets make the ratio column noise.
        println!("smoke: OK");
    } else if gate_ok {
        println!("gate: ring >= 4x async at depth >= 8 on spin and park: OK");
    } else {
        println!("gate: ring >= 4x async at depth >= 8: NOT MET (see table)");
    }
    json.write_if(&json_path);
}
