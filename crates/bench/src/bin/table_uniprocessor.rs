//! Regenerates the §1 in-text comparison: the paper's multiprocessor PPC
//! times against published uniprocessor null-RPC round trips.
//!
//! Run: `cargo run -p ppc-bench --bin table_uniprocessor`

use ppc_bench::report;
use ppc_core::microbench::{measure, Condition};

fn main() {
    let (_rest, json_path) = report::json_flag(std::env::args().skip(1));
    let mut json = report::JsonReport::new("table_uniprocessor");
    println!("Uniprocessor IPC comparison (null round-trip RPC, microseconds)");
    println!("Reference values as cited in the paper's introduction.\n");

    let u2u = measure(Condition { kernel_server: false, hold_cd: false, flushed: false });
    let u2k = measure(Condition { kernel_server: true, hold_cd: true, flushed: false });

    let widths = [34, 10, 22];
    println!(
        "{}",
        report::row(&["system".into(), "time(us)".into(), "platform".into()], &widths)
    );
    println!("{}", report::rule(&widths));
    let rows: Vec<(&str, f64, &str)> = vec![
        ("L3 (Liedtke)", 60.0, "20 MHz 386"),
        ("L3 (Liedtke)", 10.0, "50 MHz 486"),
        ("Mach", 57.0, "25 MHz MIPS R3000"),
        ("Mach", 95.0, "16 MHz MIPS R2000"),
        ("QNX", 76.0, "33 MHz 486"),
        ("LRPC (paper citation)", 157.0, "CVAX Firefly"),
    ];
    for (name, us, plat) in rows {
        json.mode(
            &format!("{name} ({plat})"),
            report::num_fields(&[("time_us", us)]),
        );
        println!(
            "{}",
            report::row(&[name.into(), format!("{us:.1}"), plat.into()], &widths)
        );
    }
    json.mode(
        "ppc user-to-user (repro)",
        report::num_fields(&[("time_us", u2u.total().as_us())]),
    );
    json.mode(
        "ppc user-to-kernel hold-cd (repro)",
        report::num_fields(&[("time_us", u2k.total().as_us())]),
    );
    println!("{}", report::rule(&widths));
    println!(
        "{}",
        report::row(
            &[
                "PPC user-to-user (this repro)".into(),
                format!("{:.1}", u2u.total().as_us()),
                "16.67 MHz M88100 (sim)".into()
            ],
            &widths
        )
    );
    println!(
        "{}",
        report::row(
            &[
                "PPC user-to-kernel, hold CD".into(),
                format!("{:.1}", u2k.total().as_us()),
                "16.67 MHz M88100 (sim)".into()
            ],
            &widths
        )
    );
    println!("\npaper: 32.4 us user-to-user warm; 19.2 us user-to-kernel with held CD —");
    println!("multiprocessor IPC competitive with the fastest uniprocessor times.");
    json.write_if(&json_path);
}
