//! `ppc-blackbox`: load a postmortem black-box artifact
//! ([`ppc_rt::blackbox`]) and reconstruct what the facility was doing
//! when the capture fired.
//!
//! ```text
//! ppc-blackbox <artifact.json>      # analyze a captured black box
//! ppc-blackbox --smoke              # CI: capture + reload round-trip
//! ```
//!
//! The analyzer prints, in order of usefulness to a person paged at
//! 3am:
//!
//! 1. **the verdict line** — capture reason, dominant attributed time
//!    state per vCPU, and the measured interference ratio (was it us,
//!    or was it the box?),
//! 2. **alerts** — every SLO rule's state at capture, with its
//!    windowed interference annotation,
//! 3. **the merged timeline** — the embedded telemetry ticks (calls/s
//!    and occupancy per tick) interleaved with flight-recorder
//!    excursion events, oldest first,
//! 4. **tail exemplars** — the slowest recent calls, span by span.
//!
//! `--smoke` runs the whole loop in-process: drive a runtime, write a
//! black box via `Runtime::write_blackbox`, reload it, verify the
//! schema stamp and that the reloaded counters equal the live ones,
//! and run the analyzer over it.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ppc_bench::report::Json;
use ppc_rt::export;
use ppc_rt::stats::TIME_STATES;
use ppc_rt::{EntryOptions, Runtime, RuntimeOptions};

const USAGE: &str = "\
ppc-blackbox: postmortem black-box analyzer

  ppc-blackbox <artifact.json>   analyze a capture
  ppc-blackbox --smoke           CI: write + reload + analyze round-trip
";

fn num(doc: &Json, field: &str) -> f64 {
    doc.get(field).and_then(|v| v.as_f64()).unwrap_or(0.0)
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

/// The dominant (largest-share) occupancy state of one vCPU's
/// occupancy object, as `(label, share)`.
fn dominant_state(occ: &Json) -> (String, f64) {
    let mut best = ("unattributed".to_string(), 0.0);
    for &(_, _, label) in &TIME_STATES {
        let share = num(occ, label);
        if share > best.1 {
            best = (label.to_string(), share);
        }
    }
    best
}

fn analyze(doc: &Json) -> Result<String, String> {
    if doc.get("kind").and_then(|k| k.as_str()) != Some("ppc-blackbox") {
        return Err("not a ppc-blackbox artifact (kind field missing/wrong)".into());
    }
    export::check_schema_version(doc, "black box");
    let mut out = String::new();
    use std::fmt::Write as _;

    // 1. The verdict: why the capture fired and where the time went.
    let reason = doc.get("reason").and_then(|r| r.as_str()).unwrap_or("?");
    let n_vcpus = num(doc, "n_vcpus") as usize;
    let intf = doc.get("interference").cloned().unwrap_or(Json::Obj(Vec::new()));
    let _ = writeln!(
        out,
        "black box: reason={reason}  vcpus={n_vcpus}  calls={}  interference {:.2}% \
         ({} excursion(s) over {})",
        num(doc.get("counters").unwrap_or(&Json::Null), "calls"),
        num(&intf, "ratio") * 100.0,
        num(&intf, "excursions"),
        fmt_ns(num(&intf, "probed_ns")),
    );
    let occupancy = doc.get("occupancy").and_then(|o| o.as_arr()).unwrap_or_default();
    let mut causes: Vec<String> = Vec::new();
    for (v, occ) in occupancy.iter().enumerate() {
        let (state, share) = dominant_state(occ);
        let _ = writeln!(
            out,
            "  vcpu {v}: dominant state {state} ({:.1}% of attributed time)",
            share * 100.0
        );
        causes.push(state);
    }
    // Top attributed causes, ranked: dominant states, then firing
    // alerts, then measured interference.
    let alerts = doc
        .get("telemetry")
        .and_then(|t| t.get("alerts"))
        .and_then(|a| a.as_arr())
        .unwrap_or_default();
    let _ = writeln!(out, "top attributed causes:");
    causes.sort();
    causes.dedup();
    for c in &causes {
        let _ = writeln!(out, "  - time concentrated in `{c}`");
    }
    for a in alerts {
        if a.get("firing").and_then(|f| f.as_bool()) == Some(true) {
            let _ = writeln!(
                out,
                "  - SLO rule `{}` firing (measured {:.3} vs threshold {:.3}, intf {:.1}%)",
                a.get("name").and_then(|n| n.as_str()).unwrap_or("?"),
                num(a, "measured_slow"),
                num(a, "threshold"),
                num(a, "interference_ratio") * 100.0,
            );
        }
    }
    if num(&intf, "ratio") > 0.05 {
        let _ = writeln!(
            out,
            "  - host interference {:.1}%: the box was descheduling us, \
             discount latency conclusions",
            num(&intf, "ratio") * 100.0
        );
    }

    // 2. All alerts (including the quiet ones — a rule that *didn't*
    // fire is also evidence).
    if !alerts.is_empty() {
        let _ = writeln!(out, "alerts at capture:");
        for a in alerts {
            let _ = writeln!(
                out,
                "  [{}] {}  measured {:.3} / threshold {:.3}  fired {}  intf {:.1}%",
                if a.get("firing").and_then(|f| f.as_bool()) == Some(true) {
                    "FIRING"
                } else {
                    "ok"
                },
                a.get("name").and_then(|n| n.as_str()).unwrap_or("?"),
                num(a, "measured_slow"),
                num(a, "threshold"),
                num(a, "fired"),
                num(a, "interference_ratio") * 100.0,
            );
        }
    }

    // 3. Merged timeline: telemetry ticks (rates + occupancy), then
    // notable flight events. Ticks carry timestamps; flight events are
    // sequence-ordered within their vCPU ring.
    let ticks = doc
        .get("series")
        .and_then(|s| s.get("ticks"))
        .and_then(|t| t.as_arr())
        .unwrap_or_default();
    if !ticks.is_empty() {
        let _ = writeln!(out, "timeline ({} tick(s), oldest first):", ticks.len());
        for t in ticks.iter().rev().take(20).rev() {
            let c = t.get("counters").cloned().unwrap_or(Json::Obj(Vec::new()));
            let dt = num(t, "dt_ns").max(1.0);
            let occ = |name: &str| num(&c, name) / dt;
            let _ = writeln!(
                out,
                "  t+{:<9} calls/s {:<9.0} handler {:.2} spin {:.2} park {:.2} idle {:.2} intf {:.2}",
                fmt_ns(num(t, "at_ns")),
                num(&c, "calls") * 1e9 / dt,
                occ("time_handler_ns"),
                occ("time_spin_ns"),
                occ("time_park_ns"),
                occ("time_idle_ns"),
                occ("interference_ns"),
            );
        }
    }
    let flight = doc.get("flight").and_then(|f| f.as_arr()).unwrap_or_default();
    let mut notable = 0usize;
    for per_vcpu in flight {
        for ev in per_vcpu.as_arr().unwrap_or_default() {
            let kind = ev.get("kind").and_then(|k| k.as_str()).unwrap_or("?");
            if matches!(kind, "fault" | "interference" | "soft_kill" | "hard_kill") {
                if notable == 0 {
                    let _ = writeln!(out, "notable flight events:");
                }
                notable += 1;
                let _ = writeln!(
                    out,
                    "  #{:<8} vcpu {} {kind} ep={} data={}",
                    num(ev, "seq"),
                    num(ev, "vcpu"),
                    num(ev, "ep"),
                    num(ev, "data"),
                );
            }
        }
    }

    // 4. Tail exemplars: the slowest recent calls, span by span.
    let exemplars = doc.get("exemplars").and_then(|e| e.as_arr()).unwrap_or_default();
    if !exemplars.is_empty() {
        let _ = writeln!(out, "tail exemplars (slowest recent calls):");
        for ex in exemplars.iter().take(5) {
            let _ = writeln!(
                out,
                "  trace {:#010x} ep={} vcpu={} total {}",
                num(ex, "trace_id") as u64,
                num(ex, "ep"),
                num(ex, "vcpu"),
                fmt_ns(num(ex, "total_ns")),
            );
            for s in ex.get("spans").and_then(|s| s.as_arr()).unwrap_or_default() {
                let _ = writeln!(
                    out,
                    "    {:>12}  depth {}  {}",
                    s.get("phase").and_then(|p| p.as_str()).unwrap_or("?"),
                    num(s, "depth"),
                    fmt_ns(num(s, "dur_ns")),
                );
            }
        }
    }
    Ok(out)
}

/// CI round-trip: drive a runtime, capture, reload, compare, analyze.
fn smoke() -> Result<(), String> {
    let rt = Runtime::with_runtime_options(
        2,
        RuntimeOptions {
            telemetry_tick: Some(Duration::from_millis(20)),
            ..Default::default()
        },
    );
    rt.obs().set_sample_shift(0);
    let ep = rt
        .bind(
            "bb-demo",
            EntryOptions { inline_ok: true, ..Default::default() },
            Arc::new(|ctx| {
                let t0 = Instant::now();
                while t0.elapsed().as_nanos() < 1_000 {
                    std::hint::spin_loop();
                }
                ctx.args
            }),
        )
        .map_err(|e| format!("bind: {e}"))?;
    let clients = [rt.client(0, 1), rt.client(1, 1)];
    for i in 0..2_000u64 {
        for c in &clients {
            c.call(ep, [i; 8]).map_err(|e| format!("call: {e}"))?;
        }
    }
    // A few sampler ticks so the capture embeds a real timeline.
    std::thread::sleep(Duration::from_millis(120));

    let path = std::env::temp_dir().join(format!("ppc-blackbox-smoke-{}.json", std::process::id()));
    rt.write_blackbox("smoke", &path).map_err(|e| format!("write_blackbox: {e}"))?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("reload: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("reparse: {e}"))?;

    // Round-trip checks: stamp, identity, and counter equality with
    // the live runtime (no more traffic ran in between).
    if !export::check_schema_version(&doc, "black box") {
        return Err("schema_version mismatch on reload".into());
    }
    let live = rt.stats.snapshot();
    let loaded = doc.get("counters").ok_or("no counters object")?;
    for (name, value) in live.fields() {
        // The sampler thread is still running its per-tick probe, so
        // the interference counters legitimately advance between the
        // capture and this comparison; everything else must be exact
        // (traffic stopped before the capture).
        if name.starts_with("interference") {
            continue;
        }
        let got = num(loaded, name) as u64;
        if got != value {
            return Err(format!("counter {name} round-trip mismatch: wrote {value}, read {got}"));
        }
    }
    let per_vcpu = doc.get("per_vcpu").and_then(|p| p.as_arr()).unwrap_or_default();
    if per_vcpu.len() != rt.n_vcpus() {
        return Err("per_vcpu arity mismatch".into());
    }
    let occupancy = doc.get("occupancy").and_then(|o| o.as_arr()).unwrap_or_default();
    if occupancy.len() != rt.n_vcpus() {
        return Err("occupancy arity mismatch".into());
    }

    let report = analyze(&doc)?;
    print!("{report}");
    if cfg!(feature = "obs") && !report.contains("dominant state") {
        return Err("analyzer names no dominant attributed state".into());
    }
    let _ = std::fs::remove_file(&path);
    println!("ppc-blackbox smoke: OK (capture round-tripped, analyzer attributed the time)");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--smoke") {
        return match smoke() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("ppc-blackbox smoke: FAIL — {e}");
                ExitCode::FAILURE
            }
        };
    }
    let Some(path) = args.iter().find(|a| !a.starts_with("--")) else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("ppc-blackbox: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("ppc-blackbox: {path}: parse error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match analyze(&doc) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("ppc-blackbox: {e}");
            ExitCode::FAILURE
        }
    }
}
