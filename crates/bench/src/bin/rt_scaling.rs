//! Real-threads port scalability: lock-free PPC runtime vs. the
//! single-locked-queue baseline, under increasing client counts.
//!
//! Run: `cargo run -p ppc-bench --release --bin rt_scaling`
//!
//! NOTE: on a single-core host this measures software overhead under
//! oversubscription, not true parallel speedup — the *simulator* benches
//! (`figure3`, `ablation_locks`) are the faithful scalability story. The
//! interesting signal here is that the per-vCPU design does not collapse
//! as clients are added, while the global lock serializes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ppc_bench::report;
use ppc_rt::baseline::LockedServer;
use ppc_rt::{EntryOptions, Runtime, Snapshot};

const RUN_MS: u64 = 300;

fn ppc_throughput(n_clients: usize) -> (f64, Snapshot) {
    let rt = Runtime::with_options(n_clients, true, 1);
    let ep = rt.bind("echo", EntryOptions::default(), Arc::new(|c| c.args)).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    let before = rt.stats.snapshot();
    for v in 0..n_clients {
        let c = rt.client(v, 1 + v as u32);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                c.call(ep, [n; 8]).unwrap();
                n += 1;
            }
            n
        }));
    }
    let t0 = Instant::now();
    std::thread::sleep(Duration::from_millis(RUN_MS));
    stop.store(true, Ordering::Relaxed);
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    (total as f64 / t0.elapsed().as_secs_f64(), rt.stats.snapshot().since(&before))
}

fn locked_throughput(n_clients: usize) -> f64 {
    let server = Arc::new(LockedServer::start(n_clients, Arc::new(|a| a)));
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for _ in 0..n_clients {
        let s = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                s.call([n; 8]);
                n += 1;
            }
            n
        }));
    }
    let t0 = Instant::now();
    std::thread::sleep(Duration::from_millis(RUN_MS));
    stop.store(true, Ordering::Relaxed);
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    total as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let (_rest, json_path) = report::json_flag(std::env::args().skip(1));
    let mut json = report::JsonReport::new("rt_scaling");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("Real-threads PPC scalability ({cores} host core(s))");
    if cores == 1 {
        println!("(single core: oversubscribed; see figure3/ablation_locks for the");
        println!(" faithful multiprocessor scalability reproduction)");
    }
    println!();
    let widths = [8, 14, 14];
    println!(
        "{}",
        report::row(&["clients".into(), "ppc-rt".into(), "locked-queue".into()], &widths)
    );
    println!("{}", report::rule(&widths));
    let mut snapshots: Vec<(usize, Snapshot)> = Vec::new();
    for n in [1usize, 2, 4, 8] {
        let (p, snap) = ppc_throughput(n);
        let l = locked_throughput(n);
        json.mode(
            &format!("{n}_clients"),
            report::num_fields(&[("ppc_calls_per_s", p), ("locked_calls_per_s", l)]),
        );
        println!(
            "{}",
            report::row(&[n.to_string(), format!("{p:.0}"), format!("{l:.0}")], &widths)
        );
        snapshots.push((n, snap));
    }
    println!();
    println!("ppc-rt facility counters per run (sharded per-vCPU cells, aggregated):");
    for (n, snap) in snapshots {
        println!("  {n} client(s): {snap}");
    }
    json.write_if(&json_path);
}
