//! Ablation: serial stack sharing vs. dedicated (held) stacks.
//!
//! §2 of the paper: because CDs and stacks "are not bound to particular
//! workers or even particular servers [...] they are effectively recycled
//! on each call. This improves the overall cache performance of the
//! system, due to the smaller cache footprint that arises when multiple
//! servers are called in succession and sequentially share physical stack
//! pages." Hold-CD mode trades exactly that away.
//!
//! One client calls `K` different servers round-robin; we measure one
//! steady-state rotation: total time, distinct data lines touched, and
//! data-cache misses — once warm, and once under cache pressure (the
//! cache refilled with unrelated dirty lines between rotations).
//!
//! Run: `cargo run -p ppc-bench --bin ablation_stack_sharing`

use std::rc::Rc;

use hector_sim::MachineConfig;
use ppc_bench::report;
use ppc_core::{PpcSystem, ServiceSpec};

// Enough servers that dedicated stacks overwhelm the 4 ways of every
// cache set (one way = exactly one page on the 88200, so equal page
// offsets always collide), while shared stacks keep reusing two pages.
const K: usize = 16;

struct RotationResult {
    us: f64,
    lines: usize,
    misses: u64,
}

fn build(hold: bool) -> (PpcSystem, Vec<usize>, usize) {
    let mut sys = PpcSystem::boot(MachineConfig::hector(1));
    let mut eps = Vec::new();
    for i in 0..K {
        let asid = sys.kernel.create_space(&format!("svc{i}"));
        let mut spec = ServiceSpec::new(asid).name(&format!("svc{i}"));
        if hold {
            spec = spec.hold_cd();
        }
        // A server body that actually uses its stack (a 32-word frame).
        let ep = sys
            .bind_entry_boot(
                spec,
                Rc::new(|s: &mut PpcSystem, ctx| {
                    let stack = ctx.stack;
                    let c = s.kernel.machine.cpu_mut(ctx.cpu);
                    c.with_category(hector_sim::cpu::CostCategory::ServerTime, |c| {
                        let attrs = hector_sim::sym::MemAttrs::cached_private(stack.base.module());
                        c.store_words(stack.at(stack.len - 192), 32, attrs);
                        c.exec(10);
                        c.load_words(stack.at(stack.len - 192), 32, attrs);
                    });
                    ctx.args
                }),
            )
            .unwrap();
        eps.push(ep);
    }
    let prog = sys.kernel.new_program_id();
    let client = sys.new_client(0, prog);
    (sys, eps, client)
}

fn rotation(sys: &mut PpcSystem, eps: &[usize], client: usize, pressure: bool) -> RotationResult {
    // Warm rotations.
    for _ in 0..3 {
        for &ep in eps {
            sys.call(0, client, ep, [0; 8]).unwrap();
        }
    }
    if pressure {
        sys.kernel.machine.cpu_mut(0).prep_pollute_dcache_dirty(7);
    }
    sys.kernel.machine.cpu_mut(0).begin_measure();
    for &ep in eps {
        sys.call(0, client, ep, [0; 8]).unwrap();
    }
    let stats = sys.kernel.machine.cpu_mut(0).path_stats().clone();
    let bd = sys.kernel.machine.cpu_mut(0).end_measure();
    RotationResult {
        us: bd.total().as_us(),
        lines: stats.distinct_data_lines(),
        misses: stats.dcache_misses,
    }
}

fn main() {
    let (_rest, json_path) = report::json_flag(std::env::args().skip(1));
    let mut json = report::JsonReport::new("ablation_stack_sharing");
    println!("Stack sharing ablation: one client calling {K} servers round-robin");
    println!("(one full rotation measured after warm-up)\n");

    let widths = [26, 10, 10, 10];
    println!(
        "{}",
        report::row(
            &["configuration".into(), "us/rot".into(), "lines".into(), "misses".into()],
            &widths
        )
    );
    println!("{}", report::rule(&widths));

    for (label, hold, pressure) in [
        ("shared stacks, warm", false, false),
        ("held stacks,   warm", true, false),
        ("shared stacks, pressure", false, true),
        ("held stacks,   pressure", true, true),
    ] {
        let (mut sys, eps, client) = build(hold);
        let r = rotation(&mut sys, &eps, client, pressure);
        json.mode(
            label,
            report::num_fields(&[
                ("us_per_rotation", r.us),
                ("distinct_lines", r.lines as f64),
                ("dcache_misses", r.misses as f64),
            ]),
        );
        println!(
            "{}",
            report::row(
                &[
                    label.into(),
                    format!("{:.1}", r.us),
                    r.lines.to_string(),
                    r.misses.to_string(),
                ],
                &widths
            )
        );
    }
    println!();
    println!("paper (§2): recycled stacks shrink the cache footprint when multiple");
    println!("servers are called in succession; holding a CD and stack per worker");
    println!("\"removes the advantages of sharing stacks, and may ultimately result");
    println!("in overall lower performance\" — visible above as ~2.5x the distinct");
    println!("lines and a substantially slower rotation.");
    json.write_if(&json_path);
}
