//! OBS-OVERHEAD gate: the cost of the always-on observability plane on
//! the null inline call, measured as enabled-vs-compiled-out.
//!
//! Two-step protocol (CI builds the binary twice):
//!
//! ```text
//! cargo run -p ppc-bench --release --no-default-features --bin obs_overhead -- --write base.json
//! cargo run -p ppc-bench --release --bin obs_overhead -- --check base.json --budget 1.05
//! ```
//!
//! The compiled-out run records the baseline ns/call; the enabled run
//! re-measures and fails (exit 1) if it exceeds `baseline × budget`.
//! Shared CI runners jitter by more than 5% on a ~70 ns number, so an
//! absolute grace floor (default 25 ns, `--floor-ns`) also passes the
//! check — the budget is the real gate on quiet machines, the floor
//! keeps noisy ones from flaking. Histograms stay affordable because the
//! per-call cost is one `Relaxed` config load plus a thread-local tick;
//! timestamps are only taken on sampled calls (1 in 128 by default).
//!
//! The enabled run measures with the causal-tracing plane in its
//! default (enabled) state **and the telemetry sampler running at its
//! default tick**, so the gate covers span minting and the background
//! snapshot/delta work too. `--no-trace` disables the span plane and
//! `--no-sampler` the telemetry thread, for attribution runs that
//! isolate histogram cost from tracing cost from sampler cost.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ppc_bench::report::{self, Json};
use ppc_rt::{EntryOptions, Runtime};

/// Null inline call ns/call: minimum over trials (interference only ever
/// adds time), same estimator as `rt_modes`. `trace_on` leaves the span
/// plane in its default enabled state; `--no-trace` switches it off so
/// the gate can attribute a regression to tracing vs the histograms.
///
/// On the enabled (`obs`) side the telemetry sampler runs at its default
/// tick for the whole measurement, so the budget also covers the
/// background snapshot/delta work the sampler's shared-nothing reads
/// cause. The compiled-out baseline stays sampler-free: it defines the
/// zero-observability floor the budget is measured against.
fn measure_null_inline(trace_on: bool, sampler_on: bool) -> f64 {
    const TRIALS: usize = 8;
    const BUDGET: Duration = Duration::from_millis(60);
    let rt = Runtime::new(1);
    rt.spans().set_enabled(trace_on);
    if sampler_on && cfg!(feature = "obs") {
        rt.start_telemetry(
            ppc_rt::telemetry::DEFAULT_TICK,
            ppc_rt::telemetry::DEFAULT_SERIES_DEPTH,
            Vec::new(),
        );
    }
    let ep = rt
        .bind(
            "null",
            EntryOptions { inline_ok: true, ..Default::default() },
            Arc::new(|ctx| ctx.args),
        )
        .unwrap();
    let client = rt.client(0, 1);
    for _ in 0..1_000 {
        client.call(ep, [7; 8]).unwrap();
    }
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let t0 = Instant::now();
        let mut iters = 0u64;
        while t0.elapsed() < BUDGET {
            for _ in 0..100 {
                std::hint::black_box(client.call(ep, std::hint::black_box([7; 8])).unwrap());
            }
            iters += 100;
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

fn doc(ns: f64, trace_on: bool, sampler_on: bool) -> Json {
    Json::obj([
        ("bench", Json::Str("obs_overhead".to_string())),
        ("obs_compiled", Json::Bool(cfg!(feature = "obs"))),
        ("trace_enabled", Json::Bool(cfg!(feature = "obs") && trace_on)),
        ("sampler_enabled", Json::Bool(cfg!(feature = "obs") && sampler_on)),
        ("ns_per_call", Json::Num(ns)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |name: &str| -> Option<String> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
    };
    let budget: f64 = flag_value("--budget").map(|s| s.parse().unwrap()).unwrap_or(1.05);
    let floor_ns: f64 = flag_value("--floor-ns").map(|s| s.parse().unwrap()).unwrap_or(25.0);
    let trace_on = !args.iter().any(|a| a == "--no-trace");
    let sampler_on = !args.iter().any(|a| a == "--no-sampler");

    let ns = measure_null_inline(trace_on, sampler_on);
    println!(
        "null inline call: {ns:.1} ns/call (histograms {}, tracing {})",
        match (cfg!(feature = "obs"), sampler_on) {
            (false, _) => "compiled out",
            (true, true) => "compiled in, enabled, sampler running",
            (true, false) => "compiled in, enabled, sampler off",
        },
        match (cfg!(feature = "obs"), trace_on) {
            (false, _) => "compiled out",
            (true, true) => "enabled",
            (true, false) => "disabled",
        }
    );

    if let Some(path) = flag_value("--write") {
        std::fs::write(&path, doc(ns, trace_on, sampler_on).to_string() + "\n")
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("baseline written: {path}");
        return;
    }

    if let Some(path) = flag_value("--check") {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let base = Json::parse(&text)
            .unwrap_or_else(|e| panic!("parsing {path}: {e}"))
            .get("ns_per_call")
            .and_then(|v| v.as_f64())
            .expect("baseline has ns_per_call");
        let ratio = ns / base;
        let within_budget = ratio <= budget;
        let within_floor = ns - base <= floor_ns;
        println!(
            "baseline {base:.1} ns/call -> {ns:.1} ns/call ({:+.1}%, budget {:.0}%, \
             grace floor {floor_ns:.0} ns)",
            (ratio - 1.0) * 100.0,
            (budget - 1.0) * 100.0,
        );
        if within_budget || within_floor {
            println!("obs overhead: OK");
        } else {
            println!("obs overhead: FAIL — regression exceeds budget and grace floor");
            std::process::exit(1);
        }
    }

    // Consistency with the other bins: `--json` emits the same document.
    let (_rest, json_path) = report::json_flag(args.into_iter());
    if let Some(path) = json_path {
        std::fs::write(&path, doc(ns, trace_on, sampler_on).to_string() + "\n")
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("json report: {}", path.display());
    }
}
