//! `ppc-top`: a live terminal view of a running runtime's telemetry —
//! windowed rates, per-vCPU lanes and call quantiles, and active SLO
//! alerts — polled over the `serve_metrics` HTTP endpoint (or from an
//! in-process demo runtime with `--attach`).
//!
//! ```text
//! ppc-top --url http://127.0.0.1:9100        # poll a serve_metrics endpoint
//! ppc-top --attach                           # spawn a demo runtime + traffic
//! ppc-top --url ... --once                   # one frame, no clear (CI)
//! ppc-top --smoke                            # self-contained CI smoke test
//! ```
//!
//! Flags: `--window 1s|10s|60s` picks the displayed window (default
//! `1s`); `--interval-ms N` the poll cadence (default 1000). `--once`
//! renders a single frame and exits 0 — the CI-friendly mode. `--smoke`
//! runs the full telemetry loop end to end with **no external tools**:
//! it spawns a runtime with an injected near-zero-threshold SLO rule,
//! serves metrics on a loopback port, drives traffic until the alert
//! fires, round-trips `/metrics` through the crate's own Prometheus
//! parser (including the `ppc_rate_*` gauges), renders a frame from
//! `/json`, and writes the runtime's diagnostics dump to
//! `--diag <path>` (if given) for CI artifact upload. Exit 1 with a
//! message on any failed expectation.
//!
//! The viewer is deliberately dumb: everything it shows is parsed out
//! of the `/json` document with the crate's own [`Json`] parser, so it
//! doubles as a living consumer test of the export schema — if a field
//! the viewer needs moves, `--smoke` breaks in CI.

use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ppc_bench::report::Json;
use ppc_rt::export::{self, parse_prometheus};
use ppc_rt::http::http_get;
use ppc_rt::telemetry::{SloMetric, SloRule};
use ppc_rt::{EntryOptions, Runtime, RuntimeOptions};

const USAGE: &str = "\
ppc-top: live telemetry viewer for a ppc-rt runtime

  --url <http://host:port>   poll a Runtime::serve_metrics endpoint
  --addr <host:port>         same, bare address form
  --attach                   spawn an in-process demo runtime + traffic
  --window <1s|10s|60s>      which telemetry window to render (default 1s)
  --interval-ms <n>          poll/render cadence (default 1000)
  --once                     render one frame and exit (CI)
  --smoke                    end-to-end CI smoke (implies in-process runtime)
  --diag <path>              (smoke) write the diagnostics dump here
";

fn flag_value(args: &[String], name: &str) -> Option<String> {
    if let Some(i) = args.iter().position(|a| a == name) {
        return args.get(i + 1).cloned();
    }
    let eq = format!("{name}=");
    args.iter().find_map(|a| a.strip_prefix(&eq)).map(str::to_string)
}

/// `http://host:port[/...]` or bare `host:port` → socket address.
fn parse_addr(s: &str) -> Result<SocketAddr, String> {
    let s = s.strip_prefix("http://").unwrap_or(s);
    let s = s.split('/').next().unwrap_or(s);
    s.to_socket_addrs()
        .map_err(|e| format!("{s}: {e}"))?
        .next()
        .ok_or_else(|| format!("{s}: no address"))
}

// ---------------------------------------------------------------------
// Frame rendering
// ---------------------------------------------------------------------

fn fmt_rate(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

fn fmt_ns(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}us", v / 1e3)
    } else {
        format!("{v:.0}ns")
    }
}

fn num(doc: &Json, field: &str) -> f64 {
    doc.get(field).and_then(|v| v.as_f64()).unwrap_or(0.0)
}

/// Render one frame from a parsed `/json` document. Returns an error
/// when the document is missing the telemetry section (sampler not
/// running on the target runtime).
fn render_frame(doc: &Json, window: &str) -> Result<String, String> {
    let tel = doc.get("telemetry").ok_or("no `telemetry` section: is the sampler running?")?;
    let w = tel
        .get("windows")
        .and_then(|ws| ws.get(window))
        .ok_or_else(|| format!("no `{window}` window in telemetry.windows"))?;
    let mut out = String::new();
    // Transport line: in-process, or the serving segment's occupancy.
    let transport = match doc.get("transport") {
        Some(t) => {
            let mode = t.get("mode").and_then(|v| v.as_str()).unwrap_or("in-process");
            if mode == "in-process" {
                mode.to_string()
            } else {
                format!(
                    "{mode}  seg {:.0} KiB (hw {:.0} KiB)  clients {:.0}",
                    num(t, "segment_bytes") / 1024.0,
                    num(t, "segment_high_water_bytes") / 1024.0,
                    num(t, "segment_clients"),
                )
            }
        }
        None => "in-process".to_string(),
    };
    out.push_str(&format!(
        "ppc-top  tick {:.0} ms  ticks {}  window {window} ({:.2}s measured)  transport {transport}\n",
        num(tel, "tick_ms"),
        num(tel, "ticks"),
        num(w, "dt_ns") / 1e9,
    ));

    // Alerts first: the reason a human is looking at this screen.
    let alerts = tel.get("alerts").and_then(|a| a.as_arr()).unwrap_or_default();
    if alerts.is_empty() {
        out.push_str("alerts: none configured\n");
    } else {
        let firing = alerts
            .iter()
            .filter(|a| a.get("firing").and_then(|v| v.as_bool()) == Some(true))
            .count();
        out.push_str(&format!("alerts: {} rule(s), {firing} firing\n", alerts.len()));
        for a in alerts {
            let name = a.get("name").and_then(|v| v.as_str()).unwrap_or("?");
            let firing = a.get("firing").and_then(|v| v.as_bool()) == Some(true);
            out.push_str(&format!(
                "  {} {name:<24} measured {:.3} / threshold {:.3}  (burn x{:.1}, fired {}, {} firing tick(s), intf {:.1}%)\n",
                if firing { "[FIRING]" } else { "[ok]    " },
                num(a, "measured_slow"),
                num(a, "threshold"),
                num(a, "burn_factor"),
                num(a, "fired"),
                num(a, "firing_ticks"),
                num(a, "interference_ratio") * 100.0,
            ));
        }
    }

    // Headline rates over the selected window.
    let rates = w.get("rates").ok_or("window lacks `rates`")?;
    out.push_str(&format!(
        "rates/s: calls {}  (handoff {} / inline {})  upcalls {}  ring submits {}  spin {}  park {}\n",
        fmt_rate(num(rates, "calls")),
        fmt_rate(num(rates, "handoff_calls")),
        fmt_rate(num(rates, "inline_calls")),
        fmt_rate(num(rates, "upcalls")),
        fmt_rate(num(rates, "ring_submits")),
        fmt_rate(num(rates, "spin_waits")),
        fmt_rate(num(rates, "park_waits")),
    ));

    // Facility occupancy: attributed thread-seconds per wall-second,
    // split by time state. (Several threads account to one vCPU's
    // shard — pooled workers, the ring worker, waiting clients — so
    // the states sum to the attributed *thread* count, not to 1.0.)
    let occ = |name: &str| num(rates, name) / 1e9;
    out.push_str(&format!(
        "occupancy: handler {:.2}  spin {:.2}  park {:.2}  ring {:.2}  copy {:.2}  frank {:.2}  idle {:.2}",
        occ("time_handler_ns"),
        occ("time_spin_ns"),
        occ("time_park_ns"),
        occ("time_ring_ns"),
        occ("time_copy_ns"),
        occ("time_frank_ns"),
        occ("time_idle_ns"),
    ));
    let intf = tel.get("interference").map(|i| num(i, window)).unwrap_or(0.0);
    out.push_str(&format!("   interference {:.2}%\n", intf * 100.0));

    // Windowed call latency, merged then per vCPU.
    if let Some(call) = w.get("latency_ns").and_then(|l| l.get("call")) {
        out.push_str(&format!(
            "call latency: p50 {}  p99 {}  p999 {}  max {}  ({} sample(s))\n",
            fmt_ns(num(call, "p50")),
            fmt_ns(num(call, "p99")),
            fmt_ns(num(call, "p999")),
            fmt_ns(num(call, "max")),
            num(call, "count"),
        ));
    } else {
        out.push_str("call latency: no samples in window\n");
    }
    let per_vcpu = w.get("per_vcpu").and_then(|v| v.as_arr()).unwrap_or_default();
    out.push_str("  vcpu      calls/s     handoff      inline         p50         p99        p999   hnd%  spn%  prk%  idl%\n");
    for (i, v) in per_vcpu.iter().enumerate() {
        let c = v.get("counters").cloned().unwrap_or(Json::Obj(Vec::new()));
        let call = v.get("call_ns").cloned().unwrap_or(Json::Obj(Vec::new()));
        let dt_s = (num(w, "dt_ns") / 1e9).max(1e-9);
        let pct = |name: &str| num(&c, name) / (num(w, "dt_ns")).max(1.0) * 100.0;
        out.push_str(&format!(
            "  {i:<4} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11} {:>6.1} {:>5.1} {:>5.1} {:>5.1}\n",
            fmt_rate(num(&c, "calls") / dt_s),
            fmt_rate(num(&c, "handoff_calls") / dt_s),
            fmt_rate(num(&c, "inline_calls") / dt_s),
            fmt_ns(num(&call, "p50")),
            fmt_ns(num(&call, "p99")),
            fmt_ns(num(&call, "p999")),
            pct("time_handler_ns"),
            pct("time_spin_ns"),
            pct("time_park_ns"),
            pct("time_idle_ns"),
        ));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// In-process demo runtime (--attach / --smoke)
// ---------------------------------------------------------------------

/// A 2-vCPU runtime with the sampler on a fast tick, plus a background
/// traffic thread so the viewer has something to show. Returns the
/// runtime and a stop flag for the traffic thread.
fn demo_runtime(rules: Vec<SloRule>) -> (Arc<Runtime>, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
    let rt = Runtime::with_runtime_options(
        2,
        RuntimeOptions {
            telemetry_tick: Some(Duration::from_millis(25)),
            slo_rules: rules,
            ..Default::default()
        },
    );
    let ep = rt
        .bind(
            "top-demo",
            EntryOptions { inline_ok: true, ..Default::default() },
            Arc::new(|ctx| ctx.args),
        )
        .unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let traffic = {
        let rt = Arc::clone(&rt);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let clients = [rt.client(0, 1), rt.client(1, 1)];
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for c in &clients {
                    let _ = c.call(ep, [i; 8]);
                }
                i = i.wrapping_add(1);
                if i.is_multiple_of(64) {
                    // Keep the demo from saturating a CI box: bursts with
                    // breathing room, not a spin flood.
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        })
    };
    (rt, stop, traffic)
}

fn poll_and_render(addr: SocketAddr, window: &str, once: bool, interval: Duration) -> ExitCode {
    loop {
        let frame = http_get(addr, "/json")
            .map_err(|e| format!("GET /json from {addr}: {e}"))
            .and_then(|(status, body)| {
                if status != 200 {
                    return Err(format!("GET /json: HTTP {status}"));
                }
                Json::parse(&body).map_err(|e| format!("parsing /json: {e}"))
            })
            .and_then(|doc| render_frame(&doc, window));
        match frame {
            Ok(f) => {
                if !once {
                    print!("\x1b[2J\x1b[H"); // clear + home, plain ANSI
                }
                print!("{f}");
            }
            Err(e) => {
                eprintln!("ppc-top: {e}");
                return ExitCode::FAILURE;
            }
        }
        if once {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(interval);
    }
}

// ---------------------------------------------------------------------
// --smoke: the CI end-to-end
// ---------------------------------------------------------------------

fn smoke(diag_path: Option<String>) -> Result<(), String> {
    // A rule any traffic at all violates: the alert must fire.
    let rule = SloRule {
        name: "smoke-call-rate-ceiling",
        metric: SloMetric::Rate("calls"),
        window: Duration::from_millis(100),
        threshold: 0.001,
        burn_factor: 1.0,
        nudge_frank: false,
    };
    let (rt, stop, traffic) = demo_runtime(vec![rule]);
    // Automatic capture target: the alert's rising edge must leave a
    // black-box artifact here.
    let bb_dir = std::env::temp_dir().join(format!("ppc-top-smoke-bb-{}", std::process::id()));
    std::fs::create_dir_all(&bb_dir).map_err(|e| format!("mkdir {}: {e}", bb_dir.display()))?;
    rt.set_blackbox_dir(Some(bb_dir.clone()));
    let server = rt.serve_metrics("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
    let addr = server.addr();
    let tel = rt.telemetry().expect("sampler running");

    // Wait (bounded) for the injected violation to fire.
    let fired = (0..400).any(|_| {
        std::thread::sleep(Duration::from_millis(25));
        tel.alerts().first().map(|a| a.fired >= 1).unwrap_or(false)
    });
    if !fired {
        return Err("injected SLO violation never fired".into());
    }

    // The rising edge triggers an automatic black-box capture; give the
    // sampler thread a moment to finish the write.
    let artifact = (0..200).find_map(|_| {
        let found = std::fs::read_dir(&bb_dir)
            .ok()
            .and_then(|d| d.filter_map(Result::ok).next().map(|e| e.path()));
        if found.is_none() {
            std::thread::sleep(Duration::from_millis(25));
        }
        found
    });
    let artifact =
        artifact.ok_or("SLO alert fired but no black-box artifact was captured")?;
    let bb = std::fs::read_to_string(&artifact)
        .map_err(|e| format!("reading {}: {e}", artifact.display()))?;
    let bb = Json::parse(&bb).map_err(|e| format!("parsing black box: {e}"))?;
    if bb.get("kind").and_then(|k| k.as_str()) != Some("ppc-blackbox") {
        return Err("black-box artifact lacks kind=ppc-blackbox".into());
    }
    if !export::check_schema_version(&bb, "black box") {
        return Err("black-box artifact schema_version mismatch".into());
    }
    println!("black-box artifact captured: {}", artifact.display());

    // /metrics round-trips through the crate's own parser, including
    // the windowed ppc_rate_* gauges and the cumulative counters.
    let (status, body) =
        http_get(addr, "/metrics").map_err(|e| format!("GET /metrics: {e}"))?;
    if status != 200 {
        return Err(format!("GET /metrics: HTTP {status}"));
    }
    let snap = parse_prometheus(&body).map_err(|e| format!("parse /metrics: {e}"))?;
    if snap.counter("calls").unwrap_or(0) == 0 {
        return Err("parsed /metrics shows zero calls under live traffic".into());
    }
    for window in ["1s", "10s", "60s"] {
        if snap.rate("calls", window).is_none() {
            return Err(format!("ppc_rate_calls{{window=\"{window}\"}} missing from /metrics"));
        }
    }
    if snap.rate("calls", "1s").unwrap_or(0.0) <= 0.0 {
        return Err("1s calls rate is zero under live traffic".into());
    }
    // The attribution plane's time counters ride the same windows, and
    // the labeled occupancy family must be in the exposition text.
    if snap.rate("time_handler_ns", "1s").is_none() {
        return Err("ppc_rate_time_handler_ns{window=\"1s\"} missing from /metrics".into());
    }
    if !body.contains("ppc_time_ns{state=\"handler\"}") {
        return Err("ppc_time_ns{state=...} family missing from /metrics".into());
    }

    // /json renders a full frame and reports the alert as fired.
    let (status, body) = http_get(addr, "/json").map_err(|e| format!("GET /json: {e}"))?;
    if status != 200 {
        return Err(format!("GET /json: HTTP {status}"));
    }
    let doc = Json::parse(&body).map_err(|e| format!("parse /json: {e}"))?;
    if !export::check_schema_version(&doc, "/json") {
        return Err("/json schema_version mismatch".into());
    }
    let frame = render_frame(&doc, "1s")?;
    println!("{frame}");
    let alert_fired = doc
        .get("telemetry")
        .and_then(|t| t.get("alerts"))
        .and_then(|a| a.as_arr())
        .and_then(|a| a.first().cloned())
        .map(|a| num(&a, "fired") >= 1.0)
        .unwrap_or(false);
    if !alert_fired {
        return Err("/json alerts section does not show the fired alert".into());
    }

    // The diagnostics dump (with its alerts section) is the CI artifact.
    let diagnostics = rt.diagnostics();
    if !diagnostics.contains("smoke-call-rate-ceiling") {
        return Err("diagnostics dump lacks the alert rule".into());
    }
    if let Some(path) = diag_path {
        std::fs::write(&path, &diagnostics).map_err(|e| format!("writing {path}: {e}"))?;
        println!("diagnostics written: {path}");
    }

    stop.store(true, Ordering::Relaxed);
    traffic.join().map_err(|_| "traffic thread panicked".to_string())?;
    let _ = std::fs::remove_dir_all(&bb_dir);
    println!(
        "ppc-top smoke: OK (alert fired, black box captured, /metrics round-tripped, frame rendered)"
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let once = args.iter().any(|a| a == "--once");
    let attach = args.iter().any(|a| a == "--attach");
    let window = flag_value(&args, "--window").unwrap_or_else(|| "1s".to_string());
    let interval = Duration::from_millis(
        flag_value(&args, "--interval-ms").and_then(|s| s.parse().ok()).unwrap_or(1000),
    );

    if args.iter().any(|a| a == "--smoke") {
        return match smoke(flag_value(&args, "--diag")) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("ppc-top smoke: FAIL — {e}");
                ExitCode::FAILURE
            }
        };
    }

    if attach {
        let (rt, stop, traffic) = demo_runtime(Vec::new());
        let server = match rt.serve_metrics("127.0.0.1:0") {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ppc-top: bind: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("ppc-top --attach: demo runtime at {}", server.url(""));
        // Give the sampler a couple of ticks before the first frame so
        // `--once` renders real rates, not an empty window.
        std::thread::sleep(Duration::from_millis(100));
        let code = poll_and_render(server.addr(), &window, once, interval);
        stop.store(true, Ordering::Relaxed);
        let _ = traffic.join();
        return code;
    }

    let target = flag_value(&args, "--url").or_else(|| flag_value(&args, "--addr"));
    let Some(target) = target else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    match parse_addr(&target) {
        Ok(addr) => poll_and_render(addr, &window, once, interval),
        Err(e) => {
            eprintln!("ppc-top: {e}");
            ExitCode::FAILURE
        }
    }
}
