//! Regenerates **Figure 3**: throughput of independent clients repeatedly
//! requesting the length of a file from the file server, 1..16 processors.
//!
//! Run: `cargo run -p ppc-bench --bin figure3 [--release]`

use ppc_bench::{fig3, report};

fn main() {
    let (_rest, json_path) = report::json_flag(std::env::args().skip(1));
    let mut json = report::JsonReport::new("figure3");
    let base = fig3::sequential_base_us();
    json.meta("sequential_base_us", report::Json::Num(base));
    println!("Figure 3: GetLength throughput vs. processors");
    println!("sequential base: {base:.1} us/call (paper: 66 us, half IPC / half server)\n");

    let rows = fig3::run(16, 50_000.0);
    let widths = [5, 12, 14, 12, 26];
    println!(
        "{}",
        report::row(
            &["N".into(), "ideal".into(), "diff-files".into(), "single".into(), "".into()],
            &widths
        )
    );
    println!("{}", report::rule(&widths[..4]));
    let max = rows.last().map(|r| r.ideal).unwrap_or(1.0);
    for r in &rows {
        json.mode(
            &format!("n{}", r.n),
            report::num_fields(&[
                ("ideal", r.ideal),
                ("different_files", r.different_files),
                ("single_file", r.single_file),
            ]),
        );
        println!(
            "{}",
            report::row(
                &[
                    r.n.to_string(),
                    format!("{:.0}", r.ideal),
                    format!("{:.0}", r.different_files),
                    format!("{:.0}", r.single_file),
                    format!("|{}", report::bar(r.different_files, max, 20)),
                ],
                &widths
            )
        );
    }

    let r1 = &rows[0];
    let r16 = &rows[15];
    println!();
    println!(
        "different files: {:.2}x speedup at 16 CPUs (paper: linear/perfect)",
        r16.different_files / r1.different_files
    );
    let peak = rows
        .iter()
        .max_by(|a, b| a.single_file.total_cmp(&b.single_file))
        .unwrap();
    println!(
        "single file:     saturates near {} CPUs at {:.2}x, {:.2}x left at 16 \
         (paper: saturates at 4)",
        peak.n,
        peak.single_file / r1.single_file,
        r16.single_file / r1.single_file
    );

    // Robustness check: the saturation conclusion with 25% per-iteration
    // compute jitter (clients not in lockstep).
    let jit = fig3::run_single_file_jittered(16, 20_000.0, 25, 42);
    let j1 = jit[0].1;
    let jpeak = jit.iter().map(|(_, t)| *t).fold(0.0f64, f64::max);
    println!(
        "jittered (25%):  single-file peak {:.2}x, {:.2}x at 16 — same conclusion",
        jpeak / j1,
        jit[15].1 / j1
    );
    json.meta("different_files_speedup_16", report::Json::Num(r16.different_files / r1.different_files));
    json.meta("single_file_peak_n", report::Json::Num(peak.n as f64));
    json.write_if(&json_path);
}
