//! Regenerates the §5 footprint claim: "only 200 instructions and 6 cache
//! lines are required to complete most calls" (of ~2000 lines of
//! commented implementation code).
//!
//! Run: `cargo run -p ppc-bench --bin fastpath_footprint`

use ppc_bench::report;
use ppc_core::microbench::{measure_path_stats, Condition};

fn main() {
    let (_rest, json_path) = report::json_flag(std::env::args().skip(1));
    let mut json = report::JsonReport::new("fastpath_footprint");
    println!("Fastpath footprint (warm user-to-user null call)\n");
    for (label, cond) in [
        ("no CD   ", Condition { kernel_server: false, hold_cd: false, flushed: false }),
        ("hold CD ", Condition { kernel_server: false, hold_cd: true, flushed: false }),
        ("kernel  ", Condition { kernel_server: true, hold_cd: false, flushed: false }),
        ("k+hold  ", Condition { kernel_server: true, hold_cd: true, flushed: false }),
    ] {
        let st = measure_path_stats(cond);
        json.mode(
            label.trim_end(),
            report::num_fields(&[
                ("instructions", st.instructions as f64),
                ("loads", st.loads as f64),
                ("stores", st.stores as f64),
                ("distinct_lines", st.distinct_data_lines() as f64),
                ("dcache_misses", st.dcache_misses as f64),
                ("tlb_misses", st.tlb_misses as f64),
                ("shared_accesses", st.shared_accesses as f64),
                ("lock_acquires", st.lock_acquires as f64),
            ]),
        );
        println!(
            "{label} instructions={:<4} loads={:<3} stores={:<3} distinct-lines={:<3} \
             dcache-misses={:<2} tlb-misses={:<2} shared={} locks={}",
            st.instructions,
            st.loads,
            st.stores,
            st.distinct_data_lines(),
            st.dcache_misses,
            st.tlb_misses,
            st.shared_accesses,
            st.lock_acquires,
        );
    }
    println!("\npaper: ~200 instructions and 6 cache lines for most calls;");
    println!("our distinct-line count includes the user save area, PCBs, trap");
    println!("frame and worker stack as well as the 6-ish PPC facility lines.");
    println!("shared=0 locks=0 is the paper's central design property.");
    json.write_if(&json_path);
}
