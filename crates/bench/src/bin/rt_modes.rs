//! Dispatch-mode matrix for the real-threads runtime: **inline** vs.
//! **spin-then-park** vs. **park-only** vs. the locked-queue baseline,
//! across handler service times.
//!
//! Run: `cargo run -p ppc-bench --release --bin rt_modes`
//! JSON: `cargo run -p ppc-bench --release --bin rt_modes -- --json BENCH_RTMODES.json`
//!
//! This is the measurement behind the hand-off fast-path rework: inline
//! dispatch eliminates the park/unpark round trip entirely (the caller
//! *is* the worker), and the adaptive spin rendezvous recovers most of
//! that saving for entries that still need a worker, as long as the
//! handler is short. As the handler grows, the rendezvous cost amortizes
//! away and the rows converge (the 20 µs row shows spin ≈ park); past
//! the 100 µs EWMA threshold the adaptive policy stops spinning at all.
//!
//! Per-mode stats snapshots are printed so the attribution is checkable:
//! the inline row completes via `inline=`, the spin rows via `spin=`, the
//! park rows via `park=`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ppc_bench::report;
use ppc_rt::baseline::LockedServer;
use ppc_rt::{EntryOptions, Handler, Runtime, SpinPolicy};

/// Busy-wait handler of roughly `ns` nanoseconds of service time.
fn busy_handler(ns: u64) -> Handler {
    Arc::new(move |ctx| {
        if ns > 0 {
            let t0 = Instant::now();
            while (t0.elapsed().as_nanos() as u64) < ns {
                std::hint::spin_loop();
            }
        }
        ctx.args
    })
}

/// Mean ns/call of `f`, reported as the minimum over `TRIALS` trials of
/// ~`budget_ms` wall clock each (after a short warmup). The minimum is
/// the noise-robust estimator here: interference from the host only ever
/// adds time, so the smallest trial is the closest to the true cost.
fn measure(budget_ms: u64, mut f: impl FnMut()) -> f64 {
    const TRIALS: usize = 5;
    for _ in 0..100 {
        f();
    }
    let budget = Duration::from_millis(budget_ms);
    let mut best = f64::INFINITY;
    for _ in 0..TRIALS {
        let t0 = Instant::now();
        let mut iters = 0u64;
        while t0.elapsed() < budget {
            for _ in 0..50 {
                f();
            }
            iters += 50;
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

fn ppc_mode(handler_ns: u64, opts: EntryOptions, policy: SpinPolicy) -> (f64, String, report::Json) {
    let rt = Runtime::new(1);
    rt.set_spin_policy(policy);
    let ep = rt.bind("svc", opts, busy_handler(handler_ns)).unwrap();
    let client = rt.client(0, 1);
    let before = rt.stats.snapshot();
    let ns = measure(100, || {
        std::hint::black_box(client.call(ep, std::hint::black_box([7; 8])).unwrap());
    });
    let delta = rt.stats.snapshot().since(&before);
    // The runtime's own sampled histogram plane supplies the
    // distribution — no extra timing pass, the fast path measured
    // itself while `measure` ran.
    let mut fields = vec![("ns_per_call".to_string(), report::Json::Num(ns))];
    fields.push((
        "latency_ns".to_string(),
        report::latency_fields(&rt.obs().merged(report::LatencyKind::Call)),
    ));
    (ns, delta.to_string(), report::Json::Obj(fields))
}

fn locked_mode(handler_ns: u64) -> (f64, report::Json) {
    let server = LockedServer::start(
        1,
        Arc::new(move |a: [u64; 8]| {
            if handler_ns > 0 {
                let t0 = Instant::now();
                while (t0.elapsed().as_nanos() as u64) < handler_ns {
                    std::hint::spin_loop();
                }
            }
            a
        }),
    );
    let ns = measure(100, || {
        std::hint::black_box(server.call(std::hint::black_box([7; 8])));
    });
    // The baseline has no runtime (and thus no histogram plane): a short
    // explicitly-timed pass fills a private histogram for the artifact.
    let mut h = report::Histogram::new();
    for _ in 0..4096 {
        let t0 = Instant::now();
        std::hint::black_box(server.call(std::hint::black_box([7; 8])));
        h.record(t0.elapsed().as_nanos() as u64);
    }
    let fields = vec![
        ("ns_per_call".to_string(), report::Json::Num(ns)),
        ("latency_ns".to_string(), report::latency_fields(&h)),
    ];
    (ns, report::Json::Obj(fields))
}

fn main() {
    let (_rest, json_path) = report::json_flag(std::env::args().skip(1));
    let mut json = report::JsonReport::new("rt_modes");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("Dispatch-mode latency matrix ({cores} host core(s)); ns/call");
    println!();
    let widths = [12, 10, 10, 10, 10, 10];
    println!(
        "{}",
        report::row(
            &[
                "handler".into(),
                "inline".into(),
                "spin".into(),
                "hold".into(),
                "park".into(),
                "locked".into(),
            ],
            &widths
        )
    );
    println!("{}", report::rule(&widths));

    let mut details: Vec<String> = Vec::new();
    for handler_ns in [0u64, 500, 2_000, 20_000] {
        let (inline_ns, inline_d, inline_j) = ppc_mode(
            handler_ns,
            EntryOptions { inline_ok: true, ..Default::default() },
            SpinPolicy::Adaptive,
        );
        let (spin_ns, spin_d, spin_j) =
            ppc_mode(handler_ns, EntryOptions::default(), SpinPolicy::Adaptive);
        // The paper's hold-CD mode: the worker pins its CD + scratch
        // page across calls, skipping the per-call pool borrow/return.
        let (hold_ns, hold_d, hold_j) = ppc_mode(
            handler_ns,
            EntryOptions { hold_cd: true, ..Default::default() },
            SpinPolicy::Adaptive,
        );
        let (park_ns, park_d, park_j) =
            ppc_mode(handler_ns, EntryOptions::default(), SpinPolicy::ParkOnly);
        let (locked_ns, locked_j) = locked_mode(handler_ns);
        let label = if handler_ns == 0 {
            "null".to_string()
        } else {
            format!("{handler_ns} ns")
        };
        for (mode, j) in [
            ("inline", inline_j),
            ("spin", spin_j),
            ("hold", hold_j),
            ("park", park_j),
            ("locked", locked_j),
        ] {
            let report::Json::Obj(fields) = j else { unreachable!() };
            json.mode(&format!("{label}/{mode}"), fields);
        }
        println!(
            "{}",
            report::row(
                &[
                    label.clone(),
                    format!("{inline_ns:.0}"),
                    format!("{spin_ns:.0}"),
                    format!("{hold_ns:.0}"),
                    format!("{park_ns:.0}"),
                    format!("{locked_ns:.0}"),
                ],
                &widths
            )
        );
        details.push(format!("[{label}] inline: {inline_d}"));
        details.push(format!("[{label}] spin:   {spin_d}"));
        details.push(format!("[{label}] hold:   {hold_d}"));
        details.push(format!("[{label}] park:   {park_d}"));
    }

    println!();
    println!("mode attribution (per-run stats snapshots):");
    for d in details {
        println!("  {d}");
    }
    json.write_if(&json_path);
}
