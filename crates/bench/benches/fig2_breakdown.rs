//! Criterion bench over the Figure-2 microbenchmark: one full measured
//! PPC round trip (setup + warm + measure) per condition. The *simulated*
//! time is the figure; Criterion tracks the harness's host-side cost and
//! guards against regressions in the simulator's own performance.

use criterion::{criterion_group, criterion_main, Criterion};
use ppc_core::microbench::{measure, Condition};

fn bench_conditions(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    for cond in Condition::ALL {
        g.bench_function(cond.label().replace(' ', "_").replace('/', "-"), |b| {
            b.iter(|| {
                let bd = measure(std::hint::black_box(cond));
                std::hint::black_box(bd.total())
            })
        });
    }
    g.finish();
}

fn bench_single_warm_call(c: &mut Criterion) {
    // Host cost of one warm simulated call (system reused across iters).
    let mut nb = ppc_core::microbench::setup(false, false);
    for _ in 0..4 {
        nb.sys.call(0, nb.client, nb.ep, [0; 8]).unwrap();
    }
    c.bench_function("fig2/warm_call_host_cost", |b| {
        b.iter(|| {
            let r = nb.sys.call(0, nb.client, nb.ep, std::hint::black_box([1; 8])).unwrap();
            std::hint::black_box(r)
        })
    });
}

criterion_group!(benches, bench_conditions, bench_single_warm_call);
criterion_main!(benches);
