//! Criterion sweep of the bulk-transfer modes: mailbox
//! (`call_with_payload`, chunked) vs. bulk zero-copy (`call_bulk` +
//! `with_bulk_mut`) at 64 B, 4 KiB, and 64 KiB per transfer. The
//! `bulk_modes` binary prints the full matrix with stats attribution;
//! this bench pins the same comparison into the criterion harness.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use ppc_rt::{EntryOptions, Runtime};

const MAILBOX_CHUNK: usize = 4 << 10;

/// O(1) server work (stamp the payload header): the bench isolates
/// transport cost, matching the `bulk_modes` binary.
fn stamp(bytes: &mut [u8]) {
    if let Some(b) = bytes.first_mut() {
        *b = b.wrapping_add(1);
    }
}

fn bench_bulk_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("bulk_modes");
    for size in [64usize, 4 << 10, 64 << 10] {
        // Mailbox: payload copied into the scratch page and back, one
        // response Vec per ≤4 KiB chunk.
        let rt = Runtime::new(1);
        let ep = rt
            .bind(
                "mailbox",
                EntryOptions { inline_ok: true, ..Default::default() },
                Arc::new(|ctx| {
                    let n = ctx.args[0] as usize;
                    stamp(&mut ctx.scratch()[..n]);
                    let mut rets = [0u64; 8];
                    rets[7] = n as u64;
                    rets
                }),
            )
            .unwrap();
        let client = rt.client(0, 1);
        let payload = vec![7u8; size.min(MAILBOX_CHUNK)];
        let mut dst = vec![0u8; size];
        g.bench_function(format!("mailbox/{size}"), |b| {
            b.iter(|| {
                let mut moved = 0usize;
                while moved < size {
                    let n = (size - moved).min(MAILBOX_CHUNK);
                    let mut args = [0u64; 8];
                    args[0] = n as u64;
                    let (_rets, resp) =
                        client.call_with_payload(ep, args, &payload[..n]).unwrap();
                    dst[moved..moved + n].copy_from_slice(&resp);
                    moved += n;
                }
                std::hint::black_box(&mut dst);
            })
        });

        // Zero-copy: a one-word descriptor rides the 8-word frame; the
        // handler works on the granted span in place.
        let rt2 = Runtime::new(1);
        let zep = rt2
            .bind(
                "zerocopy",
                EntryOptions { inline_ok: true, ..Default::default() },
                Arc::new(|ctx| {
                    let desc = ctx.bulk_desc().unwrap();
                    let n = ctx
                        .with_bulk_mut(desc, |bytes| {
                            stamp(bytes);
                            bytes.len()
                        })
                        .unwrap();
                    [n as u64, 0, 0, 0, 0, 0, 0, 0]
                }),
            )
            .unwrap();
        let client2 = rt2.client(0, 1);
        let region = client2.bulk_register(size).unwrap();
        region.fill(0, &vec![7u8; size]).unwrap();
        region.grant(zep, true).unwrap();
        let desc = region.full_desc(true);
        g.bench_function(format!("zerocopy/{size}"), |b| {
            b.iter(|| std::hint::black_box(client2.call_bulk(zep, [0; 8], desc).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bulk_modes);
criterion_main!(benches);
