//! Real-threads null-call latency: the user-level analogue of Figure 2's
//! single-client round trip, across the no-CD / hold-CD axis, plus the
//! locked-queue baseline for contrast.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use ppc_rt::baseline::LockedServer;
use ppc_rt::{EntryOptions, Runtime};

fn bench_null_call(c: &mut Criterion) {
    let mut g = c.benchmark_group("rt_latency");

    let rt = Runtime::new(1);
    let ep = rt.bind("null", EntryOptions::default(), Arc::new(|ctx| ctx.args)).unwrap();
    let client = rt.client(0, 1);
    g.bench_function("null_call_no_cd", |b| {
        b.iter(|| std::hint::black_box(client.call(ep, std::hint::black_box([7; 8])).unwrap()))
    });

    let rt2 = Runtime::new(1);
    let held = rt2
        .bind(
            "null-held",
            EntryOptions { hold_cd: true, ..Default::default() },
            Arc::new(|ctx| ctx.args),
        )
        .unwrap();
    let client2 = rt2.client(0, 1);
    g.bench_function("null_call_hold_cd", |b| {
        b.iter(|| std::hint::black_box(client2.call(held, std::hint::black_box([7; 8])).unwrap()))
    });

    let server = LockedServer::start(1, Arc::new(|a| a));
    g.bench_function("null_call_locked_baseline", |b| {
        b.iter(|| std::hint::black_box(server.call(std::hint::black_box([7; 8]))))
    });

    g.finish();
}

fn bench_async_dispatch(c: &mut Criterion) {
    let rt = Runtime::new(1);
    let ep = rt.bind("async-null", EntryOptions::default(), Arc::new(|ctx| ctx.args)).unwrap();
    let client = rt.client(0, 1);
    c.bench_function("rt_latency/async_dispatch_and_wait", |b| {
        b.iter(|| {
            let h = client.call_async(ep, std::hint::black_box([3; 8])).unwrap();
            std::hint::black_box(h.wait())
        })
    });
}

criterion_group!(benches, bench_null_call, bench_async_dispatch);
criterion_main!(benches);
