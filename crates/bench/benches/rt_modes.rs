//! Criterion harness for the dispatch-mode matrix: inline vs.
//! spin-then-park vs. park-only vs. the locked-queue baseline, on a null
//! handler and a ~2 µs handler. The `rt_modes` binary prints the full
//! matrix with stats attribution; this harness makes the same comparison
//! CI-runnable (`cargo bench -- --test` smoke mode).

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use ppc_rt::baseline::LockedServer;
use ppc_rt::{EntryOptions, Handler, Runtime, SpinPolicy};

fn busy_handler(ns: u64) -> Handler {
    Arc::new(move |ctx| {
        if ns > 0 {
            let t0 = Instant::now();
            while (t0.elapsed().as_nanos() as u64) < ns {
                std::hint::spin_loop();
            }
        }
        ctx.args
    })
}

fn bench_modes(c: &mut Criterion, group_name: &str, handler_ns: u64) {
    let mut g = c.benchmark_group(group_name);

    let rt = Runtime::new(1);
    let ep = rt
        .bind(
            "svc-inline",
            EntryOptions { inline_ok: true, ..Default::default() },
            busy_handler(handler_ns),
        )
        .unwrap();
    let client = rt.client(0, 1);
    g.bench_function("inline", |b| {
        b.iter(|| std::hint::black_box(client.call(ep, std::hint::black_box([7; 8])).unwrap()))
    });

    let rt_spin = Runtime::new(1);
    rt_spin.set_spin_policy(SpinPolicy::Adaptive);
    let ep_spin = rt_spin.bind("svc-spin", EntryOptions::default(), busy_handler(handler_ns)).unwrap();
    let client_spin = rt_spin.client(0, 1);
    g.bench_function("spin", |b| {
        b.iter(|| {
            std::hint::black_box(client_spin.call(ep_spin, std::hint::black_box([7; 8])).unwrap())
        })
    });

    let rt_park = Runtime::new(1);
    rt_park.set_spin_policy(SpinPolicy::ParkOnly);
    let ep_park = rt_park.bind("svc-park", EntryOptions::default(), busy_handler(handler_ns)).unwrap();
    let client_park = rt_park.client(0, 1);
    g.bench_function("park", |b| {
        b.iter(|| {
            std::hint::black_box(client_park.call(ep_park, std::hint::black_box([7; 8])).unwrap())
        })
    });

    let server = LockedServer::start(
        1,
        Arc::new(move |a: [u64; 8]| {
            if handler_ns > 0 {
                let t0 = Instant::now();
                while (t0.elapsed().as_nanos() as u64) < handler_ns {
                    std::hint::spin_loop();
                }
            }
            a
        }),
    );
    g.bench_function("locked", |b| {
        b.iter(|| std::hint::black_box(server.call(std::hint::black_box([7; 8]))))
    });

    g.finish();
}

fn bench_null(c: &mut Criterion) {
    bench_modes(c, "rt_modes_null", 0);
}

fn bench_2us(c: &mut Criterion) {
    bench_modes(c, "rt_modes_2us", 2_000);
}

criterion_group!(benches, bench_null, bench_2us);
criterion_main!(benches);
