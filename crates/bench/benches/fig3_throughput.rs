//! Criterion bench over the Figure-3 harness: the DES replay of the
//! GetLength workload at representative processor counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppc_bench::fig3;

fn bench_fig3_points(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    for n in [1usize, 4, 16] {
        g.bench_with_input(BenchmarkId::new("getlength_des", n), &n, |b, &n| {
            b.iter(|| {
                let rows = fig3::run(n, std::hint::black_box(5_000.0));
                std::hint::black_box(rows.last().map(|r| r.single_file))
            })
        });
    }
    g.finish();
}

fn bench_segment_measurement(c: &mut Criterion) {
    c.bench_function("fig3/measure_call_costs", |b| {
        b.iter(|| std::hint::black_box(fig3::measure_call_costs(16, 3, 0)))
    });
}

criterion_group!(benches, bench_fig3_points, bench_segment_measurement);
criterion_main!(benches);
