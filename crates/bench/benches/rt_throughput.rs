//! Real-threads throughput under multiple clients: per-vCPU lock-free PPC
//! vs. the global locked queue. (On a single-core host this exercises
//! oversubscribed software overhead; see `figure3` for the machine-model
//! scalability reproduction.)

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ppc_rt::baseline::LockedServer;
use ppc_rt::{EntryOptions, Runtime};

const CALLS_PER_CLIENT: u64 = 200;

fn bench_multiclient(c: &mut Criterion) {
    let mut g = c.benchmark_group("rt_throughput");
    g.sample_size(10);
    for n in [1usize, 2, 4] {
        g.throughput(Throughput::Elements(n as u64 * CALLS_PER_CLIENT));
        g.bench_with_input(BenchmarkId::new("ppc", n), &n, |b, &n| {
            let rt = Runtime::new(n);
            let ep = rt.bind("echo", EntryOptions::default(), Arc::new(|x| x.args)).unwrap();
            b.iter(|| {
                let handles: Vec<_> = (0..n)
                    .map(|v| {
                        let cl = rt.client(v, 1);
                        std::thread::spawn(move || {
                            for i in 0..CALLS_PER_CLIENT {
                                cl.call(ep, [i; 8]).unwrap();
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("locked", n), &n, |b, &n| {
            let server = Arc::new(LockedServer::start(n, Arc::new(|a| a)));
            b.iter(|| {
                let handles: Vec<_> = (0..n)
                    .map(|_| {
                        let s = Arc::clone(&server);
                        std::thread::spawn(move || {
                            for i in 0..CALLS_PER_CLIENT {
                                s.call([i; 8]);
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_multiclient);
criterion_main!(benches);
