//! Criterion bench over the lock ablation harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppc_bench::ablation;

fn bench_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    for n in [1usize, 8] {
        g.bench_with_input(BenchmarkId::new("four_designs", n), &n, |b, &n| {
            b.iter(|| {
                let rows = ablation::run(n, std::hint::black_box(5_000.0));
                std::hint::black_box(rows.last().map(|r| r.ppc))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
